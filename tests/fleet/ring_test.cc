#include "fleet/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mrperf {
namespace {

TEST(FleetKeyHashTest, PinnedGoldenValues) {
  // Pinned bytes: the ring's placement contract. A change here means
  // every deployed router would shuffle keys across the fleet and
  // every warm replica cache would go cold — bump deliberately.
  EXPECT_EQ(FleetKeyHash(""), 5665620140241705579ULL);
  EXPECT_EQ(FleetKeyHash("abc"), 15640132219158150659ULL);
}

TEST(FleetKeyHashTest, DistinctKeysScatter) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(FleetKeyHash("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashRingTest, PinnedGoldenRouting) {
  // CanonicalPredictKey-shaped strings, pinned against 3- and
  // 5-replica rings at the default virtual-node count.
  // request_key_golden_test pins the key bytes underneath; together
  // they freeze fleet placement.
  const std::string k1 =
      "n=4|i=1073741824|j=1|b=134217728|r=2|reps=5|seed=1234|s=capacity|"
      "p=default|c=uniform";
  const std::string k2 =
      "n=8|i=2147483648|j=1|b=134217728|r=2|reps=0|seed=1234|s=capacity|"
      "p=default|c=uniform";
  const std::string k3 =
      "n=16|i=5368709120|j=4|b=268435456|r=8|reps=3|seed=99|s=fifo|"
      "p=wordcount|c=uniform";
  HashRing ring3(3);
  HashRing ring5(5);
  EXPECT_EQ(ring3.Route(k1), 1u);
  EXPECT_EQ(ring3.Route(k2), 0u);
  EXPECT_EQ(ring3.Route(k3), 1u);
  EXPECT_EQ(ring5.Route(k1), 1u);
  EXPECT_EQ(ring5.Route(k2), 0u);
  EXPECT_EQ(ring5.Route(k3), 4u);
  EXPECT_EQ(ring3.PreferenceOrder(k1), (std::vector<size_t>{1, 0, 2}));
  EXPECT_EQ(ring3.PreferenceOrder(k2), (std::vector<size_t>{0, 2, 1}));
  EXPECT_EQ(ring3.PreferenceOrder(k3), (std::vector<size_t>{1, 2, 0}));
}

TEST(HashRingTest, RoutingIsDeterministicAcrossInstances) {
  HashRing a(4);
  HashRing b(4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.Route(key), b.Route(key));
    EXPECT_EQ(a.PreferenceOrder(key), b.PreferenceOrder(key));
  }
}

TEST(HashRingTest, PreferenceOrderVisitsEveryReplicaOnce) {
  HashRing ring(5);
  for (int i = 0; i < 100; ++i) {
    const std::vector<size_t> order =
        ring.PreferenceOrder("key-" + std::to_string(i));
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order.front(), ring.Route("key-" + std::to_string(i)));
    std::set<size_t> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), 5u);
  }
}

TEST(HashRingTest, LoadSpreadsAcrossReplicas) {
  // With 64 virtual nodes per replica, 3 replicas should each own a
  // material share of 3000 distinct keys — no replica starves or hogs.
  HashRing ring(3);
  std::map<size_t, int> counts;
  for (int i = 0; i < 3000; ++i) {
    ++counts[ring.Route("key-" + std::to_string(i))];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [replica, count] : counts) {
    EXPECT_GT(count, 3000 / 6) << "replica " << replica << " starves";
    EXPECT_LT(count, 3000 / 2) << "replica " << replica << " hogs";
  }
}

TEST(HashRingTest, SingleReplicaRoutesEverything) {
  HashRing ring(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ring.Route("key-" + std::to_string(i)), 0u);
    EXPECT_EQ(ring.PreferenceOrder("key-" + std::to_string(i)),
              std::vector<size_t>{0});
  }
}

TEST(HashRingTest, ReplicaDeathMovesOnlyItsOwnKeys) {
  // The consistent-hashing property the fleet leans on: removing one
  // replica from the ring must not move keys between the survivors.
  // Simulate the removal with the router's actual failover rule: the
  // key lands on the first non-dead replica of its preference order.
  HashRing ring(4);
  const size_t dead = 2;
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::vector<size_t> order = ring.PreferenceOrder(key);
    size_t with_all = order[0];
    size_t with_dead = order[0] != dead ? order[0] : order[1];
    if (with_all != dead) {
      EXPECT_EQ(with_dead, with_all)
          << "key of a live replica moved when replica " << dead << " died";
    } else {
      ++moved;
    }
  }
  // The dead replica's own arcs (roughly a quarter) must actually move.
  EXPECT_GT(moved, 2000 / 8);
}

TEST(HashRingTest, MoreVirtualNodesTightenTheSpread) {
  HashRing coarse(3, 8);
  HashRing fine(3, 256);
  const auto spread = [](const HashRing& ring) {
    std::map<size_t, int> counts;
    for (int i = 0; i < 6000; ++i) {
      ++counts[ring.Route("key-" + std::to_string(i))];
    }
    int max_count = 0;
    int min_count = 6000;
    for (const auto& [replica, count] : counts) {
      max_count = std::max(max_count, count);
      min_count = std::min(min_count, count);
    }
    return max_count - min_count;
  };
  EXPECT_LE(spread(fine), spread(coarse));
}

}  // namespace
}  // namespace mrperf
