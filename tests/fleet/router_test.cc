/// End-to-end FleetRouter tests against in-process PredictServer
/// replicas: clients speak to the router exactly as they would to a
/// single predictd and must not be able to tell the difference —
/// byte-identical responses, QoS ordering, structured errors — except
/// that replica death re-routes instead of failing.

#include "fleet/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/scatter.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/server.h"

namespace mrperf {
namespace {

PredictServerOptions FastReplicaOptions() {
  PredictServerOptions options;
  options.port = 0;
  options.service.num_threads = 2;
  return options;
}

FleetRouterOptions RouterOver(const std::vector<int>& ports) {
  FleetRouterOptions options;
  options.start_probing = false;  // tests drive health via transport
  for (const int port : ports) {
    options.replicas.push_back({"127.0.0.1", port});
  }
  return options;
}

std::string PredictLine(const std::string& id, int nodes,
                        const std::string& extra = "") {
  std::string line = "{\"id\": \"" + id +
                     "\", \"nodes\": " + std::to_string(nodes) +
                     ", \"input_gb\": 0.25, \"repetitions\": 1";
  if (!extra.empty()) line += ", " + extra;
  line += "}";
  return line;
}

std::string Call(PredictClient& client, const std::string& line) {
  Result<std::string> response = client.Call(line);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? response.ValueOrDie() : std::string();
}

/// Blocks the replica's dispatcher inside dispatch_hook until opened,
/// so tests can pile requests up behind a held batch (the same
/// technique as the service-level QoS tests).
class DispatchGate {
 public:
  void OnDispatch() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n] { return entered_ >= n; });
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

TEST(FleetRouterTest, StartRequiresReplicas) {
  FleetRouter router(FleetRouterOptions{});
  const Status started = router.Start();
  ASSERT_FALSE(started.ok());
  EXPECT_TRUE(started.IsInvalidArgument());
}

TEST(FleetRouterTest, ForwardsPredictAndErrorsByteIdentically) {
  std::vector<std::unique_ptr<PredictServer>> replicas;
  std::vector<int> ports;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<PredictServer>(FastReplicaOptions()));
    ASSERT_TRUE(replicas.back()->Start().ok());
    ports.push_back(replicas.back()->port());
  }
  FleetRouter router(RouterOver(ports));
  ASSERT_TRUE(router.Start().ok());

  PredictClient via_router;
  ASSERT_TRUE(via_router.Connect("127.0.0.1", router.port()).ok());
  PredictClient direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ports[0]).ok());

  // Same line, same bytes: evaluation is deterministic and the router
  // forwards the request verbatim, so it does not matter that the
  // router may pick a different replica than `direct` talks to.
  const std::string line = PredictLine("byte-id", 4);
  EXPECT_EQ(Call(via_router, line), Call(direct, line));

  // Malformed lines are forwarded too: the error response is the
  // replica's own bytes, not a router re-implementation.
  const std::string bad = "{\"id\": \"oops\", \"nodes\": \"many\"}";
  EXPECT_EQ(Call(via_router, bad), Call(direct, bad));
  const std::string garbage = "not json at all";
  EXPECT_EQ(Call(via_router, garbage), Call(direct, garbage));

  // {"kind": "stats"} is answered by the router itself.
  const std::string stats = Call(via_router, "{\"kind\": \"stats\"}");
  EXPECT_NE(stats.find("\"router\": true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"replica_count\": 3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"replicas\": ["), std::string::npos) << stats;

  router.DrainAndStop();
  for (auto& replica : replicas) replica->DrainAndStop();
}

TEST(FleetRouterTest, DuplicateKeysLandOnOneReplica) {
  std::vector<std::unique_ptr<PredictServer>> replicas;
  std::vector<int> ports;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<PredictServer>(FastReplicaOptions()));
    ASSERT_TRUE(replicas.back()->Start().ok());
    ports.push_back(replicas.back()->port());
  }
  FleetRouter router(RouterOver(ports));
  ASSERT_TRUE(router.Start().ok());

  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());

  // Eight requests sharing one canonical key (ids differ — the id is
  // not part of the key) must all land on the ring owner, where the
  // replica's own coalescing and solve cache can deduplicate them.
  for (int i = 0; i < 8; ++i) {
    Call(client, PredictLine("dup-" + std::to_string(i), 4));
  }
  int replicas_hit = 0;
  for (auto& replica : replicas) {
    const int64_t requests = replica->service().Stats().requests_total;
    if (requests > 0) {
      ++replicas_hit;
      EXPECT_EQ(requests, 8);
    }
  }
  EXPECT_EQ(replicas_hit, 1);

  // Distinct keys spread: with 64 virtual nodes, twenty different
  // grids cannot all pile onto a single replica.
  for (int nodes = 1; nodes <= 20; ++nodes) {
    Call(client, PredictLine("spread", nodes));
  }
  int replicas_busy = 0;
  for (auto& replica : replicas) {
    if (replica->service().Stats().requests_total > 0) ++replicas_busy;
  }
  EXPECT_GE(replicas_busy, 2);

  router.DrainAndStop();
  for (auto& replica : replicas) replica->DrainAndStop();
}

TEST(FleetRouterTest, SweepMatchesPointByPointEvaluation) {
  std::vector<std::unique_ptr<PredictServer>> replicas;
  std::vector<int> ports;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<PredictServer>(FastReplicaOptions()));
    ASSERT_TRUE(replicas.back()->Start().ok());
    ports.push_back(replicas.back()->port());
  }
  FleetRouter router(RouterOver(ports));
  ASSERT_TRUE(router.Start().ok());

  const std::string sweep =
      R"({"kind": "sweep", "id": "s1", "nodes": [2, 4, 6],)"
      R"( "reducers": [1, 2], "repetitions": 1})";

  // Build the expected response by evaluating the expanded points
  // one-by-one against a single replica: the scatter-gathered sweep
  // must be byte-identical to the unsplit evaluation.
  Result<JsonValue> parsed = ParseJson(sweep);
  ASSERT_TRUE(parsed.ok());
  Result<SweepExpansion> expanded = ExpandSweepRequest(parsed.ValueOrDie());
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  PredictClient direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ports[0]).ok());
  std::vector<std::string> results;
  for (const std::string& point : expanded.ValueOrDie().point_lines) {
    const PointOutcome outcome = ClassifyPointResponse(Call(direct, point));
    ASSERT_TRUE(outcome.ok) << outcome.error_message;
    results.push_back(outcome.result_object);
  }
  const std::string expected =
      MakeSweepResponse(std::string("s1"), results);

  PredictClient via_router;
  ASSERT_TRUE(via_router.Connect("127.0.0.1", router.port()).ok());
  EXPECT_EQ(Call(via_router, sweep), expected);

  // A malformed grid is rejected by the router with a structured
  // error, id echoed, without touching any replica.
  const std::string rejected =
      Call(via_router, R"({"kind": "sweep", "id": "bad", "nodes": []})");
  EXPECT_NE(rejected.find("\"id\": \"bad\""), std::string::npos) << rejected;
  EXPECT_NE(rejected.find("\"ok\": false"), std::string::npos) << rejected;

  router.DrainAndStop();
  for (auto& replica : replicas) replica->DrainAndStop();
}

TEST(FleetRouterTest, ReplicaDeadlineExpiryReachesTheOriginalClient) {
  // A deadline_ms that expires inside the replica's queue must come
  // back through the router as the replica's own structured
  // `deadline_exceeded` — the router forwards QoS fields verbatim and
  // never masks replica errors.
  auto gate = std::make_shared<DispatchGate>();
  PredictServerOptions options = FastReplicaOptions();
  options.service.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictServer replica(options);
  ASSERT_TRUE(replica.Start().ok());
  FleetRouter router(RouterOver({replica.port()}));
  ASSERT_TRUE(router.Start().ok());

  PredictClient holder;
  ASSERT_TRUE(holder.Connect("127.0.0.1", router.port()).ok());
  ASSERT_TRUE(holder.SendLine(PredictLine("hold", 2)).ok());
  gate->WaitEntered(1);  // the dispatcher is now blocked mid-batch

  PredictClient late;
  ASSERT_TRUE(late.Connect("127.0.0.1", router.port()).ok());
  ASSERT_TRUE(
      late.SendLine(PredictLine("late", 4, "\"deadline_ms\": 1")).ok());
  // A 1 ms deadline queued behind a blocked dispatcher is long expired
  // by the time the batch is popped.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate->Open();

  Result<std::string> response = late.ReadLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.ValueOrDie().find("\"id\": \"late\""), std::string::npos)
      << response.ValueOrDie();
  EXPECT_NE(response.ValueOrDie().find("\"code\": \"deadline_exceeded\""),
            std::string::npos)
      << response.ValueOrDie();
  EXPECT_TRUE(holder.ReadLine().ok());

  router.DrainAndStop();
  replica.DrainAndStop();
}

TEST(FleetRouterTest, InteractiveOvertakesBulkEndToEnd) {
  // Three clients on separate connections: a held bulk request, a
  // queued *expensive* bulk request, then a queued interactive one.
  // The interactive request must complete first once the gate opens —
  // proof that the per-priority upstream connections keep the
  // replica's QoS dispatch order visible through the router.
  auto gate = std::make_shared<DispatchGate>();
  PredictServerOptions options = FastReplicaOptions();
  options.service.num_threads = 1;  // serialize evaluations
  options.service.max_batch = 1;    // dispatch strictly by QoS order
  options.service.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictServer replica(options);
  ASSERT_TRUE(replica.Start().ok());
  FleetRouter router(RouterOver({replica.port()}));
  ASSERT_TRUE(router.Start().ok());

  PredictClient holder;
  ASSERT_TRUE(holder.Connect("127.0.0.1", router.port()).ok());
  ASSERT_TRUE(holder.SendLine(PredictLine("hold", 2)).ok());
  gate->WaitEntered(1);

  const auto wait_queue_depth = [&replica](int64_t depth) {
    for (int i = 0; i < 500; ++i) {
      if (replica.service().Stats().queue_depth >= depth) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };

  // The bulk request is admitted *first* and made expensive (more
  // jobs, more repetitions) so the overtake is unmistakable.
  PredictClient bulk;
  ASSERT_TRUE(bulk.Connect("127.0.0.1", router.port()).ok());
  ASSERT_TRUE(
      bulk.SendLine(PredictLine("b2", 8, "\"jobs\": 4, \"repetitions\": 5"))
          .ok());
  ASSERT_TRUE(wait_queue_depth(1));
  PredictClient interactive;
  ASSERT_TRUE(interactive.Connect("127.0.0.1", router.port()).ok());
  ASSERT_TRUE(interactive
                  .SendLine(PredictLine("i1", 6,
                                        "\"priority\": \"interactive\""))
                  .ok());
  ASSERT_TRUE(wait_queue_depth(2));

  std::mutex log_mu;
  std::vector<std::string> completion_order;
  const auto reader = [&log_mu, &completion_order](PredictClient* client,
                                                   const char* name) {
    Result<std::string> response = client->ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    std::lock_guard<std::mutex> lock(log_mu);
    completion_order.emplace_back(name);
  };
  std::thread bulk_reader(reader, &bulk, "b2");
  std::thread interactive_reader(reader, &interactive, "i1");
  gate->Open();
  bulk_reader.join();
  interactive_reader.join();
  EXPECT_TRUE(holder.ReadLine().ok());

  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], "i1");
  EXPECT_EQ(completion_order[1], "b2");

  router.DrainAndStop();
  replica.DrainAndStop();
}

TEST(FleetRouterTest, DeadReplicaReroutesToTheRingSuccessor) {
  std::vector<std::unique_ptr<PredictServer>> replicas;
  std::vector<int> ports;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<PredictServer>(FastReplicaOptions()));
    ASSERT_TRUE(replicas.back()->Start().ok());
    ports.push_back(replicas.back()->port());
  }
  FleetRouter router(RouterOver(ports));
  ASSERT_TRUE(router.Start().ok());

  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());

  const std::string line = PredictLine("failover", 4);
  const std::string first = Call(client, line);
  EXPECT_NE(first.find("\"ok\": true"), std::string::npos) << first;

  // The replica whose requests_total moved is the ring owner.
  size_t owner = replicas.size();
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i]->service().Stats().requests_total > 0) {
      owner = i;
      break;
    }
  }
  ASSERT_LT(owner, replicas.size());

  // Kill the owner. The retry must transparently land on the ring
  // successor and, because evaluation is deterministic, produce the
  // exact same bytes the owner produced.
  replicas[owner]->DrainAndStop();
  EXPECT_EQ(Call(client, line), first);
  EXPECT_FALSE(router.membership().IsHealthy(owner));

  int64_t survivor_requests = 0;
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (i == owner) continue;
    survivor_requests += replicas[i]->service().Stats().requests_total;
  }
  EXPECT_EQ(survivor_requests, 1);

  const std::string stats = router.StatsJson();
  EXPECT_NE(stats.find("\"rerouted_total\""), std::string::npos) << stats;

  router.DrainAndStop();
  for (auto& replica : replicas) replica->DrainAndStop();
}

TEST(FleetRouterTest, ExhaustedPreferenceOrderAnswersUnavailable) {
  // Find a port with nothing listening by binding and releasing it.
  int dead_port = 0;
  {
    PredictServer ephemeral(FastReplicaOptions());
    ASSERT_TRUE(ephemeral.Start().ok());
    dead_port = ephemeral.port();
    ephemeral.DrainAndStop();
  }
  FleetRouter router(RouterOver({dead_port}));
  ASSERT_TRUE(router.Start().ok());

  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());
  Result<std::string> response = client.Call(PredictLine("orphan", 4));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.ValueOrDie().find("\"id\": \"orphan\""),
            std::string::npos)
      << response.ValueOrDie();
  EXPECT_NE(response.ValueOrDie().find("\"code\": \"unavailable\""),
            std::string::npos)
      << response.ValueOrDie();

  // The connection survives the structured error.
  const std::string stats = Call(client, "{\"kind\": \"stats\"}");
  EXPECT_NE(stats.find("\"unavailable_total\": 1"), std::string::npos)
      << stats;

  router.DrainAndStop();
}

}  // namespace
}  // namespace mrperf
