#include "fleet/membership.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"

namespace mrperf {
namespace {

TEST(ParseReplicaListTest, ParsesOrderedHostPortList) {
  const auto parsed =
      ParseReplicaList("127.0.0.1:7171,127.0.0.1:7172,10.0.0.5:80");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<ReplicaAddress>& replicas = parsed.ValueOrDie();
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0].host, "127.0.0.1");
  EXPECT_EQ(replicas[0].port, 7171);
  EXPECT_EQ(replicas[2].ToString(), "10.0.0.5:80");
}

TEST(ParseReplicaListTest, RejectsMalformedEntries) {
  // A typo must not silently shrink the fleet (and shift the ring).
  EXPECT_FALSE(ParseReplicaList("").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1:7171,").ok());
  EXPECT_FALSE(ParseReplicaList(",127.0.0.1:7171").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1:").ok());
  EXPECT_FALSE(ParseReplicaList(":7171").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1:port").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1:0").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1:65536").ok());
  EXPECT_FALSE(ParseReplicaList("127.0.0.1:7171,,127.0.0.1:7172").ok());
}

std::vector<ReplicaAddress> TwoReplicas() {
  return {{"127.0.0.1", 1}, {"127.0.0.1", 2}};
}

TEST(FleetMembershipTest, StartsHealthyAndTracksReports) {
  FleetMembership membership(TwoReplicas(), MembershipOptions{});
  EXPECT_EQ(membership.replica_count(), 2u);
  EXPECT_TRUE(membership.IsHealthy(0));
  EXPECT_TRUE(membership.IsHealthy(1));

  // A transport failure kills immediately — no probe quorum needed.
  membership.ReportFailure(1);
  EXPECT_TRUE(membership.IsHealthy(0));
  EXPECT_FALSE(membership.IsHealthy(1));

  membership.ReportSuccess(1);
  EXPECT_TRUE(membership.IsHealthy(1));

  const std::vector<ReplicaHealth> snapshot = membership.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[1].address.ToString(), "127.0.0.1:2");
  EXPECT_TRUE(snapshot[1].healthy);
  EXPECT_EQ(snapshot[1].consecutive_failures, 0);
}

TEST(FleetMembershipTest, OutOfRangeReplicaIsUnhealthyNoop) {
  FleetMembership membership(TwoReplicas(), MembershipOptions{});
  EXPECT_FALSE(membership.IsHealthy(7));
  membership.ReportFailure(7);
  membership.ReportSuccess(7);
  EXPECT_TRUE(membership.IsHealthy(0));
}

TEST(FleetMembershipTest, ProberDetectsDeathAndRecovery) {
  // Probe a real PredictServer: alive -> healthy; stopped -> dead
  // after failure_threshold probes; restarted on the same port ->
  // healthy again within a backoff.
  auto server = std::make_unique<PredictServer>(PredictServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  const int port = server->port();

  MembershipOptions options;
  options.probe_interval_ms = 20;
  options.probe_timeout_ms = 250;
  options.failure_threshold = 2;
  options.max_backoff_ms = 80;
  FleetMembership membership({{"127.0.0.1", port}}, options);
  membership.StartProbing();

  const auto wait_for = [&membership](bool healthy) {
    for (int i = 0; i < 500; ++i) {
      if (membership.IsHealthy(0) == healthy) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };

  EXPECT_TRUE(wait_for(true));
  EXPECT_TRUE(membership.IsHealthy(0));

  server->DrainAndStop();
  server.reset();
  EXPECT_TRUE(wait_for(false));

  PredictServerOptions reborn_options;
  reborn_options.port = port;
  PredictServer reborn(reborn_options);
  ASSERT_TRUE(reborn.Start().ok());
  EXPECT_TRUE(wait_for(true));

  membership.StopProbing();
  const std::vector<ReplicaHealth> snapshot = membership.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_GT(snapshot[0].probes_total, 0);
  EXPECT_GT(snapshot[0].probe_failures_total, 0);
}

TEST(FleetMembershipTest, StopProbingIsIdempotent) {
  FleetMembership membership(TwoReplicas(), MembershipOptions{});
  membership.StopProbing();  // never started
  membership.StartProbing();
  membership.StartProbing();  // double start is a no-op
  membership.StopProbing();
  membership.StopProbing();
}

}  // namespace
}  // namespace mrperf
