#include "distributions/fitting.h"

#include <cmath>

#include <gtest/gtest.h>

#include "distributions/basic.h"

namespace mrperf {
namespace {

TEST(FittingTest, ZeroCvGivesDeterministic) {
  auto d = FitByMeanCv(5.0, 0.0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Mean(), 5.0);
  EXPECT_DOUBLE_EQ((*d)->Variance(), 0.0);
}

TEST(FittingTest, TinyCvTreatedAsDeterministic) {
  auto d = FitByMeanCv(5.0, 0.01);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Variance(), 0.0);
}

TEST(FittingTest, CvBelowOneGivesErlang) {
  // Paper §4.2.4: Erlang when CV <= 1.
  auto d = FitByMeanCv(10.0, 0.5);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)->Mean(), 10.0, 1e-12);
  EXPECT_NEAR((*d)->Cv(), 0.5, 1e-12);  // 1/cv^2 = 4 stages exactly
}

TEST(FittingTest, CvOneGivesExponentialShape) {
  auto d = FitByMeanCv(3.0, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)->Mean(), 3.0, 1e-12);
  EXPECT_NEAR((*d)->Cv(), 1.0, 1e-12);
}

TEST(FittingTest, CvAboveOneGivesHyperexponential) {
  // Paper §4.2.4: Hyperexponential when CV >= 1.
  auto d = FitByMeanCv(2.0, 1.8);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)->Mean(), 2.0, 1e-9);
  EXPECT_NEAR((*d)->Cv(), 1.8, 1e-6);
}

TEST(FittingTest, MeanAlwaysPreserved) {
  for (double cv : {0.0, 0.2, 0.33, 0.71, 1.0, 1.3, 2.5}) {
    auto d = FitByMeanCv(42.0, cv);
    ASSERT_TRUE(d.ok()) << "cv=" << cv;
    EXPECT_NEAR((*d)->Mean(), 42.0, 1e-6) << "cv=" << cv;
  }
}

TEST(FittingTest, CvApproximatelyPreservedForErlang) {
  // Erlang stage rounding means CV matches only approximately for
  // intermediate values.
  for (double cv : {0.3, 0.45, 0.6, 0.8, 0.95}) {
    auto d = FitByMeanCv(1.0, cv);
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR((*d)->Cv(), cv, 0.12) << "cv=" << cv;
  }
}

TEST(FittingTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(FitByMeanCv(-1.0, 0.5).ok());
  EXPECT_FALSE(FitByMeanCv(1.0, -0.5).ok());
  EXPECT_FALSE(FitByMeanCv(0.0, 0.5).ok());
}

TEST(FittingTest, ZeroMeanZeroCvIsDegenerate) {
  auto d = FitByMeanCv(0.0, 0.0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Mean(), 0.0);
}

TEST(ErlangStagesTest, ExactInverseSquares) {
  EXPECT_EQ(ErlangStagesForCv(1.0), 1);
  EXPECT_EQ(ErlangStagesForCv(0.5), 4);
  EXPECT_EQ(ErlangStagesForCv(1.0 / 3.0), 9);
  EXPECT_EQ(ErlangStagesForCv(0.25), 16);
}

TEST(ErlangStagesTest, CapsAtMaximum) {
  EXPECT_LE(ErlangStagesForCv(0.001), 512);
  EXPECT_GE(ErlangStagesForCv(0.001), 1);
}

class FittingRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(FittingRoundTripTest, CdfConsistentWithMoments) {
  const double cv = GetParam();
  auto d = FitByMeanCv(1.0, cv);
  ASSERT_TRUE(d.ok());
  // Numerically integrate the survival function: should recover the mean.
  double integral = 0.0;
  const double h = 0.0005;
  const double upper = (*d)->UpperTailBound();
  for (double t = 0; t < upper; t += h) {
    integral += (*d)->Survival(t) * h;
  }
  EXPECT_NEAR(integral, 1.0, 0.01) << "cv=" << cv;
}

INSTANTIATE_TEST_SUITE_P(CvGrid, FittingRoundTripTest,
                         ::testing::Values(0.1, 0.4, 0.7, 1.0, 1.5, 2.5));

}  // namespace
}  // namespace mrperf
