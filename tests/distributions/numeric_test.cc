#include "distributions/numeric.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mrperf {
namespace {

TEST(SimpsonTest, Polynomial) {
  // Simpson is exact for cubics.
  auto f = [](double x) { return x * x * x - 2 * x + 1; };
  auto r = IntegrateAdaptiveSimpson(f, 0.0, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 4.0 - 4.0 + 2.0, 1e-12);
}

TEST(SimpsonTest, Exponential) {
  auto r = IntegrateAdaptiveSimpson([](double x) { return std::exp(-x); },
                                    0.0, 50.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-8);
}

TEST(SimpsonTest, OscillatoryFunction) {
  auto r = IntegrateAdaptiveSimpson([](double x) { return std::sin(x); },
                                    0.0, M_PI);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 2.0, 1e-9);
}

TEST(SimpsonTest, SharpPeak) {
  // Narrow Gaussian centered mid-interval; adaptivity must find it.
  auto f = [](double x) {
    const double d = (x - 5.0) / 0.05;
    return std::exp(-0.5 * d * d);
  };
  auto r = IntegrateAdaptiveSimpson(f, 0.0, 10.0, 1e-12, 50);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.05 * std::sqrt(2.0 * M_PI), 1e-6);
}

TEST(SimpsonTest, EmptyInterval) {
  auto r = IntegrateAdaptiveSimpson([](double) { return 1.0; }, 3.0, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(SimpsonTest, InvalidBounds) {
  EXPECT_FALSE(
      IntegrateAdaptiveSimpson([](double) { return 1.0; }, 2.0, 1.0).ok());
}

TEST(SimpsonTest, InvalidTolerance) {
  EXPECT_FALSE(
      IntegrateAdaptiveSimpson([](double) { return 1.0; }, 0.0, 1.0, 0.0)
          .ok());
  EXPECT_FALSE(
      IntegrateAdaptiveSimpson([](double) { return 1.0; }, 0.0, 1.0, -1.0)
          .ok());
}

TEST(SimpsonTest, NonFiniteIntegrandReported) {
  auto r = IntegrateAdaptiveSimpson(
      [](double x) { return x == 0.0 ? 1.0 : 1.0 / 0.0 * 0.0; }, 0.0, 1.0);
  EXPECT_FALSE(r.ok());
}

TEST(SimpsonTest, ConstantFunction) {
  auto r = IntegrateAdaptiveSimpson([](double) { return 2.5; }, -1.0, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 10.0, 1e-12);
}

}  // namespace
}  // namespace mrperf
