#include "distributions/basic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mrperf {
namespace {

TEST(DeterministicDistTest, PointMassMoments) {
  DeterministicDist d(5.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.Cv(), 0.0);
  EXPECT_DOUBLE_EQ(d.SecondMoment(), 25.0);
}

TEST(DeterministicDistTest, StepCdf) {
  DeterministicDist d(5.0);
  EXPECT_DOUBLE_EQ(d.Cdf(4.999), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Survival(4.0), 1.0);
}

TEST(DeterministicDistTest, CloneIsIndependent) {
  DeterministicDist d(2.0);
  auto c = d.Clone();
  EXPECT_DOUBLE_EQ(c->Mean(), 2.0);
}

TEST(ExponentialDistTest, Moments) {
  ExponentialDist d(4.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 16.0);
  EXPECT_DOUBLE_EQ(d.Cv(), 1.0);
  EXPECT_DOUBLE_EQ(d.rate(), 0.25);
}

TEST(ExponentialDistTest, CdfPdfKnownValues) {
  ExponentialDist d(1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.0);
  EXPECT_NEAR(d.Cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.Pdf(0.0), 1.0, 1e-12);
  EXPECT_NEAR(d.Pdf(2.0), std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.Pdf(-1.0), 0.0);
}

TEST(ErlangDistTest, MomentsMatchStageCount) {
  for (int k : {1, 2, 4, 16}) {
    ErlangDist d(k, 10.0);
    EXPECT_DOUBLE_EQ(d.Mean(), 10.0) << "k=" << k;
    EXPECT_DOUBLE_EQ(d.Variance(), 100.0 / k) << "k=" << k;
    EXPECT_NEAR(d.Cv(), 1.0 / std::sqrt(k), 1e-12) << "k=" << k;
  }
}

TEST(ErlangDistTest, OneStageIsExponential) {
  ErlangDist e(1, 3.0);
  ExponentialDist x(3.0);
  for (double t : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(e.Cdf(t), x.Cdf(t), 1e-12);
    EXPECT_NEAR(e.Pdf(t), x.Pdf(t), 1e-9);
  }
}

TEST(ErlangDistTest, CdfIsMonotoneAndBounded) {
  ErlangDist d(8, 5.0);
  double prev = 0.0;
  for (double t = 0; t <= 30.0; t += 0.25) {
    const double c = d.Cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_GT(d.Cdf(30.0), 0.999);
}

TEST(ErlangDistTest, CdfMedianNearMeanForLargeK) {
  // Erlang concentrates around its mean as k grows.
  ErlangDist d(100, 10.0);
  EXPECT_NEAR(d.Cdf(10.0), 0.5, 0.03);
  EXPECT_LT(d.Cdf(8.0), 0.05);
  EXPECT_GT(d.Cdf(12.0), 0.95);
}

TEST(ErlangDistTest, PdfIntegratesToCdf) {
  ErlangDist d(3, 2.0);
  // Trapezoidal integral of pdf over [0, 10] should approximate Cdf(10).
  double integral = 0.0;
  const double h = 0.001;
  for (double t = 0; t < 10.0; t += h) {
    integral += 0.5 * (d.Pdf(t) + d.Pdf(t + h)) * h;
  }
  EXPECT_NEAR(integral, d.Cdf(10.0), 1e-4);
}

TEST(HyperExponentialDistTest, MomentsFromPhases) {
  HyperExponentialDist d(0.3, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.3 * 1.0 + 0.7 * 5.0);
  const double second = 2.0 * (0.3 * 1.0 + 0.7 * 25.0);
  EXPECT_NEAR(d.Variance(), second - d.Mean() * d.Mean(), 1e-12);
  EXPECT_GT(d.Cv(), 1.0);
}

TEST(HyperExponentialDistTest, FitMatchesTargets) {
  for (double cv : {1.0, 1.2, 1.5, 2.0, 4.0}) {
    auto fit = HyperExponentialDist::FitMeanCv(7.0, cv);
    ASSERT_TRUE(fit.ok()) << "cv=" << cv;
    EXPECT_NEAR(fit->Mean(), 7.0, 1e-9) << "cv=" << cv;
    EXPECT_NEAR(fit->Cv(), cv, 1e-6) << "cv=" << cv;
  }
}

TEST(HyperExponentialDistTest, FitRejectsInvalid) {
  EXPECT_FALSE(HyperExponentialDist::FitMeanCv(0.0, 1.5).ok());
  EXPECT_FALSE(HyperExponentialDist::FitMeanCv(-1.0, 1.5).ok());
  EXPECT_FALSE(HyperExponentialDist::FitMeanCv(1.0, 0.5).ok());
}

TEST(HyperExponentialDistTest, CdfMixesPhases) {
  HyperExponentialDist d(0.5, 2.0, 2.0);  // degenerates to Exp(2)
  ExponentialDist x(2.0);
  for (double t : {0.5, 1.0, 4.0}) {
    EXPECT_NEAR(d.Cdf(t), x.Cdf(t), 1e-12);
  }
}

TEST(HyperExponentialDistTest, TailBoundCoversSurvival) {
  auto fit = HyperExponentialDist::FitMeanCv(1.0, 3.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->Survival(fit->UpperTailBound()), 1e-12);
}

TEST(DistributionTest, SecondMomentConsistency) {
  ErlangDist d(4, 6.0);
  EXPECT_NEAR(d.SecondMoment(), d.Variance() + 36.0, 1e-12);
}

}  // namespace
}  // namespace mrperf
