#include "distributions/order_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "distributions/basic.h"

namespace mrperf {
namespace {

TEST(MomentsTest, VarianceAndCv) {
  Moments m{3.0, 13.0};
  EXPECT_DOUBLE_EQ(m.Variance(), 4.0);
  EXPECT_NEAR(m.Cv(), 2.0 / 3.0, 1e-12);
  Moments zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(zero.Cv(), 0.0);
}

TEST(MaxMomentsTest, TwoIidExponentials) {
  // E[max(X,Y)] for iid Exp(mean) is 1.5 * mean — the basis of the
  // paper's H2 = 3/2 fork/join factor.
  ExponentialDist x(2.0), y(2.0);
  auto m = MaxMoments(x, y);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->mean, 3.0, 1e-6);
  // Var[max of 2 iid exp(rate l)] = 5/(4l^2); l = 0.5 here.
  EXPECT_NEAR(m->Variance(), 5.0, 1e-4);
}

TEST(MaxMomentsTest, DominatedPair) {
  // max(X, c) where c is far above X's tail is essentially c.
  ExponentialDist x(1.0);
  DeterministicDist c(100.0);
  auto m = MaxMoments(x, c);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->mean, 100.0, 1e-6);
  EXPECT_NEAR(m->Variance(), 0.0, 1e-3);
}

TEST(MaxMomentsTest, DeterministicPair) {
  DeterministicDist a(4.0), b(7.0);
  auto m = MaxMoments(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->mean, 7.0, 1e-9);
}

TEST(MaxMomentsTest, HarmonicLawForNExponentials) {
  // E[max of k iid Exp(1)] = H_k exactly; validates MaxMomentsN against
  // the closed form the fork/join estimator uses.
  ExponentialDist x(1.0);
  for (int k : {2, 3, 4, 8}) {
    std::vector<const Distribution*> xs(k, &x);
    auto m = MaxMomentsN(xs);
    ASSERT_TRUE(m.ok()) << "k=" << k;
    EXPECT_NEAR(m->mean, HarmonicNumber(k), 1e-5) << "k=" << k;
  }
}

TEST(MaxMomentsTest, SingleInputIsIdentity) {
  ErlangDist x(3, 5.0);
  auto m = MaxMomentsN({&x});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mean, 5.0);
  EXPECT_NEAR(m->Variance(), x.Variance(), 1e-12);
}

TEST(MaxMomentsTest, EmptyInputRejected) {
  EXPECT_FALSE(MaxMomentsN({}).ok());
}

TEST(MinMomentsTest, TwoIidExponentials) {
  // min of two iid Exp(mean 2) is Exp(mean 1).
  ExponentialDist x(2.0), y(2.0);
  auto m = MinMoments(x, y);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->mean, 1.0, 1e-6);
  EXPECT_NEAR(m->Variance(), 1.0, 1e-3);
}

TEST(MinMaxIdentityTest, SumOfMinAndMaxEqualsSumOfMeans) {
  // E[min] + E[max] == E[X] + E[Y] for any X, Y.
  ErlangDist x(2, 3.0);
  ExponentialDist y(5.0);
  auto mx = MaxMoments(x, y);
  auto mn = MinMoments(x, y);
  ASSERT_TRUE(mx.ok());
  ASSERT_TRUE(mn.ok());
  EXPECT_NEAR(mx->mean + mn->mean, 8.0, 1e-5);
}

TEST(SumMomentsTest, IndependentSum) {
  Moments a{2.0, 5.0};   // var 1
  Moments b{3.0, 13.0};  // var 4
  Moments s = SumMoments(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 5.0);
}

TEST(SumMomentsTest, ZeroIsNeutral) {
  Moments a{4.0, 20.0};
  Moments zero{0.0, 0.0};
  Moments s = SumMoments(a, zero);
  EXPECT_DOUBLE_EQ(s.mean, a.mean);
  EXPECT_NEAR(s.Variance(), a.Variance(), 1e-12);
}

TEST(MomentsOfTest, MatchesDistribution) {
  ErlangDist x(4, 8.0);
  Moments m = MomentsOf(x);
  EXPECT_DOUBLE_EQ(m.mean, 8.0);
  EXPECT_NEAR(m.Variance(), 16.0, 1e-12);
}

TEST(MaxMomentsTest, MaxIsAtLeastEachMean) {
  // E[max(X, Y)] >= max(E[X], E[Y]) — Jensen-style sanity.
  ErlangDist x(2, 6.0);
  auto fit = HyperExponentialDist::FitMeanCv(4.0, 1.5);
  ASSERT_TRUE(fit.ok());
  auto m = MaxMoments(x, *fit);
  ASSERT_TRUE(m.ok());
  EXPECT_GE(m->mean, 6.0 - 1e-9);
}

TEST(MaxMomentsTest, VarianceNeverNegative) {
  DeterministicDist a(1.0), b(1.0);
  auto m = MaxMoments(a, b);
  ASSERT_TRUE(m.ok());
  EXPECT_GE(m->Variance(), 0.0);
}

}  // namespace
}  // namespace mrperf
