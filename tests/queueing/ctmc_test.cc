#include "queueing/ctmc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/statistics.h"

namespace mrperf {
namespace {

TEST(CtmcTest, SingleTransitionIsExponentialMean) {
  Ctmc chain(2);
  ASSERT_TRUE(chain.AddTransition(0, 1, 0.5).ok());
  auto e = chain.ExpectedTimeToAbsorption();
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR((*e)[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ((*e)[1], 0.0);
}

TEST(CtmcTest, SerialChainSumsMeans) {
  Ctmc chain(4);
  ASSERT_TRUE(chain.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(chain.AddTransition(1, 2, 2.0).ok());
  ASSERT_TRUE(chain.AddTransition(2, 3, 4.0).ok());
  auto e = chain.ExpectedTimeToAbsorption();
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR((*e)[0], 1.0 + 0.5 + 0.25, 1e-12);
}

TEST(CtmcTest, CompetingTransitionsRaceCorrectly) {
  // From state 0: rates 1 and 3 to two absorbing states. Expected time to
  // absorb = 1/(1+3).
  Ctmc chain(3);
  ASSERT_TRUE(chain.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(chain.AddTransition(0, 2, 3.0).ok());
  auto e = chain.ExpectedTimeToAbsorption();
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR((*e)[0], 0.25, 1e-12);
}

TEST(CtmcTest, CyclicChainSolvedDense) {
  // 0 -> 1 (rate 1), 1 -> 0 (rate 1), 1 -> 2 absorbing (rate 1).
  // E1 = 1/2 + (1/2) E0; E0 = 1 + E1 -> E0 = 3, E1 = 2.
  Ctmc chain(3);
  ASSERT_TRUE(chain.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(chain.AddTransition(1, 0, 1.0).ok());
  ASSERT_TRUE(chain.AddTransition(1, 2, 1.0).ok());
  auto e = chain.ExpectedTimeToAbsorption();
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR((*e)[0], 3.0, 1e-9);
  EXPECT_NEAR((*e)[1], 2.0, 1e-9);
}

TEST(CtmcTest, UnreachableAbsorptionRejected) {
  // Two states cycling forever.
  Ctmc chain(2);
  ASSERT_TRUE(chain.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(chain.AddTransition(1, 0, 1.0).ok());
  EXPECT_FALSE(chain.ExpectedTimeToAbsorption().ok());
}

TEST(CtmcTest, InvalidTransitionsRejected) {
  Ctmc chain(2);
  EXPECT_FALSE(chain.AddTransition(0, 0, 1.0).ok());   // self loop
  EXPECT_FALSE(chain.AddTransition(0, 5, 1.0).ok());   // out of range
  EXPECT_FALSE(chain.AddTransition(0, 1, 0.0).ok());   // zero rate
  EXPECT_FALSE(chain.AddTransition(0, 1, -1.0).ok());  // negative rate
}

TEST(CounterChainTest, SingleSlotIsSerialSum) {
  // m tasks on one slot: expected makespan = m / rate.
  auto t = ExactMakespanCounterChain(5, 0, 1, 0.5, 1.0);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 10.0, 1e-9);
}

TEST(CounterChainTest, AmpleSlotsGiveHarmonicLaw) {
  // m iid exponential tasks fully parallel: E[makespan] = H_m / rate —
  // the identity behind the paper's fork/join factor.
  for (int m : {2, 4, 8}) {
    auto t = ExactMakespanCounterChain(m, 0, m, 1.0, 1.0);
    ASSERT_TRUE(t.ok()) << "m=" << m;
    EXPECT_NEAR(*t, HarmonicNumber(m), 1e-9) << "m=" << m;
  }
}

TEST(CounterChainTest, ClosedFormForBoundedSlots) {
  // E = sum_{k=1..m} 1 / (min(k, c) * rate).
  const int m = 7, c = 3;
  const double rate = 2.0;
  double expected = 0.0;
  for (int k = 1; k <= m; ++k) {
    expected += 1.0 / (std::min(k, c) * rate);
  }
  auto t = ExactMakespanCounterChain(m, 0, c, rate, 1.0);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, expected, 1e-9);
}

TEST(CounterChainTest, TwoStageAddsReducePhase) {
  auto maps_only = ExactMakespanCounterChain(4, 0, 2, 1.0, 1.0);
  auto with_reduces = ExactMakespanCounterChain(4, 2, 2, 1.0, 0.5);
  ASSERT_TRUE(maps_only.ok());
  ASSERT_TRUE(with_reduces.ok());
  // Barrier: reduce stage adds H-like time for 2 tasks on 2 slots at rate
  // 0.5 -> 1/(2*0.5) + 1/(1*0.5) = 3.
  EXPECT_NEAR(*with_reduces, *maps_only + 3.0, 1e-9);
}

TEST(CounterChainTest, RejectsInvalid) {
  EXPECT_FALSE(ExactMakespanCounterChain(-1, 0, 1, 1.0, 1.0).ok());
  EXPECT_FALSE(ExactMakespanCounterChain(2, 0, 0, 1.0, 1.0).ok());
  EXPECT_FALSE(ExactMakespanCounterChain(2, 0, 1, 0.0, 1.0).ok());
  EXPECT_FALSE(ExactMakespanCounterChain(2, 2, 1, 1.0, 0.0).ok());
}

TEST(DistinctChainTest, MatchesCounterChainForIidTasks) {
  for (int m : {2, 4, 6}) {
    std::vector<double> rates(m, 1.5);
    auto distinct = ExactMakespanDistinctChain(rates);
    auto counter = ExactMakespanCounterChain(m, 0, m, 1.5, 1.0);
    ASSERT_TRUE(distinct.ok());
    ASSERT_TRUE(counter.ok());
    EXPECT_NEAR(distinct->expected_makespan, *counter, 1e-9) << "m=" << m;
    EXPECT_EQ(distinct->num_states, size_t{1} << m);
  }
}

TEST(DistinctChainTest, HeterogeneousInclusionExclusion) {
  // E[max(X1, X2)] = 1/r1 + 1/r2 - 1/(r1+r2) for independent exponentials.
  std::vector<double> rates{1.0, 3.0};
  auto r = ExactMakespanDistinctChain(rates);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->expected_makespan, 1.0 + 1.0 / 3.0 - 0.25, 1e-9);
}

TEST(DistinctChainTest, StateSpaceGrowsExponentially) {
  // The paper's §2.2 argument, as an executable fact.
  for (int m : {4, 8, 12}) {
    std::vector<double> rates(m, 1.0);
    auto r = ExactMakespanDistinctChain(rates);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->num_states, size_t{1} << m);
  }
}

TEST(DistinctChainTest, CapGuardsBlowup) {
  std::vector<double> rates(30, 1.0);
  auto r = ExactMakespanDistinctChain(rates, /*max_tasks=*/22);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(DistinctChainTest, RejectsInvalidRates) {
  EXPECT_FALSE(ExactMakespanDistinctChain({}).ok());
  EXPECT_FALSE(ExactMakespanDistinctChain({1.0, 0.0}).ok());
}

}  // namespace
}  // namespace mrperf
