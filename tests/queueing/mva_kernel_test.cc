/// Kernel-path equivalence: the blocked (vectorized) interference
/// product must be bit-for-bit identical to the scalar reference on
/// every problem — the figure-calibrated shapes and random instances —
/// so that kernel selection can never perturb golden figure series or
/// cache hits.

#include "queueing/mva_kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "queueing/mva_overlap.h"

namespace mrperf {
namespace {

/// Uniform int in [lo, hi] from the repo's deterministic RNG.
int RandInt(Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(rng.UniformInt(
                  static_cast<uint64_t>(hi - lo) + 1));
}

/// The bench/figure-shaped problem: per-node cpu/disk/net centers, tasks
/// striped across nodes, homogeneous θ.
OverlapMvaProblem StripedProblem(int tasks, int nodes, double theta) {
  OverlapMvaProblem p;
  for (int n = 0; n < nodes; ++n) {
    const std::string id = std::to_string(n);
    p.centers.push_back({"cpu" + id, CenterType::kQueueing, 4});
    p.centers.push_back({"disk" + id, CenterType::kQueueing, 1});
    p.centers.push_back({"net" + id, CenterType::kDelay, 1});
  }
  const size_t K = p.centers.size();
  for (int t = 0; t < tasks; ++t) {
    OverlapTask task;
    task.demand.assign(K, 0.0);
    const size_t base = static_cast<size_t>(t % nodes) * 3;
    task.demand[base] = 8.0;
    task.demand[base + 1] = 2.0;
    task.demand[base + 2] = 0.5;
    p.tasks.push_back(task);
  }
  p.overlap.assign(tasks, std::vector<double>(tasks, theta));
  for (int i = 0; i < tasks; ++i) p.overlap[i][i] = 0.0;
  return p;
}

OverlapMvaProblem RandomProblem(Rng& rng) {
  const int tasks = RandInt(rng, 2, 40);
  const int centers = RandInt(rng, 1, 6);
  OverlapMvaProblem p;
  for (int k = 0; k < centers; ++k) {
    const bool delay = RandInt(rng, 0, 9) == 0;
    p.centers.push_back({"c" + std::to_string(k),
                         delay ? CenterType::kDelay : CenterType::kQueueing,
                         RandInt(rng, 1, 4)});
  }
  for (int t = 0; t < tasks; ++t) {
    OverlapTask task;
    task.demand.reserve(centers);
    for (int k = 0; k < centers; ++k) {
      // Mostly sparse demands, always positive total.
      const bool sparse = RandInt(rng, 0, 2) == 0;
      task.demand.push_back(sparse ? 0.0 : rng.Uniform(0.1, 10.0));
    }
    bool any = false;
    for (double d : task.demand) any = any || d > 0;
    if (!any) task.demand[0] = 1.0;
    p.tasks.push_back(task);
  }
  p.overlap.assign(tasks, std::vector<double>(tasks, 0.0));
  for (int i = 0; i < tasks; ++i) {
    for (int j = 0; j < tasks; ++j) {
      if (i != j) p.overlap[i][j] = rng.Uniform(0.0, 1.0);
    }
  }
  return p;
}

Result<OverlapMvaSolution> SolveWith(const OverlapMvaProblem& p,
                                     MvaKernelPath path,
                                     MvaKernelScratch* scratch = nullptr) {
  OverlapMvaOptions opts;
  opts.kernel = path;
  return SolveOverlapMva(p, opts, scratch);
}

void ExpectBitIdentical(const OverlapMvaSolution& a,
                        const OverlapMvaSolution& b) {
  ASSERT_EQ(a.response.size(), b.response.size());
  EXPECT_EQ(a.iterations, b.iterations);
  for (size_t i = 0; i < a.response.size(); ++i) {
    EXPECT_EQ(a.response[i], b.response[i]) << "task " << i;
    ASSERT_EQ(a.residence[i].size(), b.residence[i].size());
    for (size_t k = 0; k < a.residence[i].size(); ++k) {
      EXPECT_EQ(a.residence[i][k], b.residence[i][k])
          << "task " << i << " center " << k;
    }
  }
}

TEST(MvaKernelTest, BlockedMatchesScalarOnFigureShapedProblems) {
  // The calibrated figure grids use 4/6/8-node clusters; golden check
  // that the vectorized path is bit-for-bit the scalar reference there.
  for (int nodes : {4, 6, 8}) {
    for (int tasks : {3, 9, 17, 40, 65}) {
      const OverlapMvaProblem p = StripedProblem(tasks, nodes, 0.8);
      auto scalar = SolveWith(p, MvaKernelPath::kScalar);
      auto blocked = SolveWith(p, MvaKernelPath::kBlocked);
      ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
      ASSERT_TRUE(blocked.ok()) << blocked.status().ToString();
      ExpectBitIdentical(*scalar, *blocked);
    }
  }
}

TEST(MvaKernelTest, BlockedMatchesScalarOnRandomProblems) {
  // Property test: random shapes, demands (including zero columns),
  // asymmetric θ, delay centers, multi-server centers. The ISSUE floor
  // is agreement within solver tolerance; the construction actually
  // guarantees bitwise equality, so assert that.
  Rng rng(0xC0FFEEull);
  for (int trial = 0; trial < 50; ++trial) {
    const OverlapMvaProblem p = RandomProblem(rng);
    auto scalar = SolveWith(p, MvaKernelPath::kScalar);
    auto blocked = SolveWith(p, MvaKernelPath::kBlocked);
    ASSERT_EQ(scalar.ok(), blocked.ok()) << "trial " << trial;
    if (!scalar.ok()) continue;  // both NotConverged is agreement too
    ExpectBitIdentical(*scalar, *blocked);
    for (size_t i = 0; i < scalar->response.size(); ++i) {
      EXPECT_NEAR(scalar->response[i], blocked->response[i],
                  1e-9 * scalar->response[i])
          << "trial " << trial;
    }
  }
}

TEST(MvaKernelTest, AutoPathMatchesBothExplicitPaths) {
  for (int tasks : {4, 64}) {
    const OverlapMvaProblem p = StripedProblem(tasks, 4, 0.7);
    auto auto_sol = SolveWith(p, MvaKernelPath::kAuto);
    auto scalar = SolveWith(p, MvaKernelPath::kScalar);
    ASSERT_TRUE(auto_sol.ok());
    ASSERT_TRUE(scalar.ok());
    ExpectBitIdentical(*scalar, *auto_sol);
  }
}

TEST(MvaKernelTest, ResolveAutoPicksBlockedForLargeProblems) {
  EXPECT_EQ(ResolveMvaKernelPath(MvaKernelPath::kAuto, 256),
            MvaKernelPath::kBlocked);
  EXPECT_EQ(ResolveMvaKernelPath(MvaKernelPath::kAuto, 2),
            MvaKernelPath::kScalar);
  EXPECT_EQ(ResolveMvaKernelPath(MvaKernelPath::kScalar, 256),
            MvaKernelPath::kScalar);
  EXPECT_EQ(ResolveMvaKernelPath(MvaKernelPath::kBlocked, 2),
            MvaKernelPath::kBlocked);
}

TEST(MvaKernelTest, ScratchReuseAcrossDifferentShapesIsClean) {
  // A scratch reused across solves of different sizes must not leak
  // state between problems: interleave big/small/big and compare with
  // fresh-scratch solves.
  MvaKernelScratch scratch;
  const OverlapMvaProblem big = StripedProblem(40, 8, 0.8);
  const OverlapMvaProblem small = StripedProblem(3, 4, 0.3);

  auto big_fresh = SolveWith(big, MvaKernelPath::kAuto);
  auto small_fresh = SolveWith(small, MvaKernelPath::kAuto);
  ASSERT_TRUE(big_fresh.ok());
  ASSERT_TRUE(small_fresh.ok());

  auto big1 = SolveWith(big, MvaKernelPath::kAuto, &scratch);
  auto small1 = SolveWith(small, MvaKernelPath::kAuto, &scratch);
  auto big2 = SolveWith(big, MvaKernelPath::kAuto, &scratch);
  ASSERT_TRUE(big1.ok());
  ASSERT_TRUE(small1.ok());
  ASSERT_TRUE(big2.ok());
  ExpectBitIdentical(*big_fresh, *big1);
  ExpectBitIdentical(*small_fresh, *small1);
  ExpectBitIdentical(*big_fresh, *big2);
}

TEST(MvaKernelTest, ThreadLocalScratchIsStablePerThread) {
  MvaKernelScratch* first = &ThreadLocalMvaScratch();
  MvaKernelScratch* second = &ThreadLocalMvaScratch();
  EXPECT_EQ(first, second);
  const OverlapMvaProblem p = StripedProblem(10, 4, 0.5);
  auto fresh = SolveWith(p, MvaKernelPath::kAuto);
  auto reused = SolveWith(p, MvaKernelPath::kAuto, first);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(reused.ok());
  ExpectBitIdentical(*fresh, *reused);
}

TEST(MvaKernelTest, FlatMatrixReshapeZeroesAndKeepsShape) {
  FlatMatrix m;
  m.Reshape(3, 4);
  EXPECT_EQ(m.rows, 3u);
  EXPECT_EQ(m.cols, 4u);
  m.At(2, 3) = 7.0;
  EXPECT_EQ(m.Row(2)[3], 7.0);
  m.Reshape(2, 2);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t k = 0; k < 2; ++k) EXPECT_EQ(m.At(i, k), 0.0);
  }
}

}  // namespace
}  // namespace mrperf
