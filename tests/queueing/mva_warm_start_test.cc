/// Warm-start property tests for the overlap-MVA solver stack: a
/// warm-started solve must land on the cold fixed point (within the
/// pinned 1e-8 tolerance) in fewer damped sweeps, a mismatched seed
/// must be ignored bit-identically, and seeded SolveThrough calls must
/// bypass the shared cache entirely (no lookups, no insertions) while
/// still being accounted in the solves/solve_iterations lifecycle
/// counters.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "queueing/mva_cache.h"
#include "queueing/mva_kernel.h"
#include "queueing/mva_overlap.h"
#include "queueing/solve_cache.h"

namespace mrperf {
namespace {

constexpr double kFixedPointTol = 1e-8;

/// 2 nodes × (cpu, disk), `tasks` tasks striped across the nodes,
/// homogeneous overlap θ.
OverlapMvaProblem BuildProblem(int tasks, double theta,
                               double demand_scale = 1.0) {
  OverlapMvaProblem p;
  for (int n = 0; n < 2; ++n) {
    const std::string id = std::to_string(n);
    p.centers.push_back({"cpu" + id, CenterType::kQueueing, 2});
    p.centers.push_back({"disk" + id, CenterType::kQueueing, 1});
  }
  const size_t K = p.centers.size();
  for (int t = 0; t < tasks; ++t) {
    OverlapTask task;
    task.demand.assign(K, 0.0);
    task.demand[(t % 2) * 2] = 6.0 * demand_scale;
    task.demand[(t % 2) * 2 + 1] = 2.0 * demand_scale;
    p.tasks.push_back(task);
  }
  p.overlap.assign(tasks, std::vector<double>(tasks, theta));
  for (int i = 0; i < tasks; ++i) p.overlap[i][i] = 0.0;
  return p;
}

GroupedOverlapMvaProblem BuildGroupedProblem(int groups, int per_group,
                                             double theta,
                                             double demand_scale = 1.0) {
  GroupedOverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 4},
               {"disk", CenterType::kQueueing, 1}};
  for (int g = 0; g < groups; ++g) {
    OverlapTaskGroup group;
    group.count = per_group;
    group.demand = {(4.0 + g) * demand_scale, (1.0 + 0.5 * g) * demand_scale};
    p.groups.push_back(std::move(group));
    for (int c = 0; c < per_group; ++c) p.task_group.push_back(g);
  }
  p.overlap.assign(groups, std::vector<double>(groups, theta));
  return p;
}

void ExpectSameFixedPoint(const OverlapMvaSolution& a,
                          const OverlapMvaSolution& b) {
  ASSERT_EQ(a.response.size(), b.response.size());
  for (size_t i = 0; i < a.response.size(); ++i) {
    const double tol =
        kFixedPointTol * std::max(1.0, std::abs(a.response[i]));
    EXPECT_NEAR(a.response[i], b.response[i], tol) << "task " << i;
  }
}

TEST(MvaWarmStartTest, WarmSolveReachesTheColdFixedPointInFewerSweeps) {
  const OverlapMvaProblem base = BuildProblem(8, 0.7);
  const OverlapMvaProblem neighbor = BuildProblem(8, 0.7, 1.02);
  OverlapMvaOptions opts;

  auto base_sol = SolveOverlapMva(base, opts);
  ASSERT_TRUE(base_sol.ok());
  auto cold = SolveOverlapMva(neighbor, opts);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm_started);

  const FlatMatrix seed = SolutionResidenceMatrix(*base_sol);
  OverlapMvaOptions warm_opts = opts;
  warm_opts.initial_residence = &seed;
  auto warm = SolveOverlapMva(neighbor, warm_opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  ExpectSameFixedPoint(*cold, *warm);
  EXPECT_LT(warm->iterations, cold->iterations);
}

TEST(MvaWarmStartTest, WarmFromTheExactFixedPointConvergesAlmostInstantly) {
  const OverlapMvaProblem p = BuildProblem(6, 0.5);
  OverlapMvaOptions opts;
  auto cold = SolveOverlapMva(p, opts);
  ASSERT_TRUE(cold.ok());

  const FlatMatrix seed = SolutionResidenceMatrix(*cold);
  OverlapMvaOptions warm_opts = opts;
  warm_opts.initial_residence = &seed;
  auto warm = SolveOverlapMva(p, warm_opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_LE(warm->iterations, 2);
  ExpectSameFixedPoint(*cold, *warm);
}

TEST(MvaWarmStartTest, MismatchedSeedShapeIsIgnoredBitIdentically) {
  const OverlapMvaProblem p = BuildProblem(5, 0.6);
  OverlapMvaOptions opts;
  auto cold = SolveOverlapMva(p, opts);
  ASSERT_TRUE(cold.ok());

  FlatMatrix wrong;  // 2×2, nothing like the 5×4 residence shape
  wrong.Reshape(2, 2);
  OverlapMvaOptions warm_opts = opts;
  warm_opts.initial_residence = &wrong;
  auto sol = SolveOverlapMva(p, warm_opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->warm_started);
  EXPECT_EQ(sol->iterations, cold->iterations);
  EXPECT_EQ(sol->response, cold->response);
  EXPECT_EQ(sol->residence, cold->residence);
}

TEST(MvaWarmStartTest, GroupedWarmSolveMatchesColdWithinTolerance) {
  const GroupedOverlapMvaProblem base = BuildGroupedProblem(3, 4, 0.6);
  const GroupedOverlapMvaProblem neighbor =
      BuildGroupedProblem(3, 4, 0.6, 1.02);
  OverlapMvaOptions opts;
  opts.kernel = MvaKernelPath::kGrouped;

  auto base_sol = SolveGroupedOverlapMvaGroupLevel(base, opts);
  ASSERT_TRUE(base_sol.ok());
  auto cold = SolveGroupedOverlapMva(neighbor, opts);
  ASSERT_TRUE(cold.ok());

  // Class-level seed: one row per group.
  const FlatMatrix seed = SolutionResidenceMatrix(*base_sol);
  OverlapMvaOptions warm_opts = opts;
  warm_opts.initial_residence = &seed;
  auto warm = SolveGroupedOverlapMva(neighbor, warm_opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  ExpectSameFixedPoint(*cold, *warm);
  EXPECT_LT(warm->iterations, cold->iterations);
}

TEST(MvaWarmStartTest, SeededSolveThroughBypassesTheCache) {
  MvaSolveCache cache(16);
  const OverlapMvaProblem p = BuildProblem(4, 0.5);
  OverlapMvaOptions opts;

  auto cold = SolveOverlapMva(p, opts);
  ASSERT_TRUE(cold.ok());
  const FlatMatrix seed = SolutionResidenceMatrix(*cold);
  OverlapMvaOptions warm_opts = opts;
  warm_opts.initial_residence = &seed;

  SolveThroughInfo info;
  auto warm = cache.SolveThrough(p, warm_opts, nullptr, &info);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(info.warm_started);
  EXPECT_FALSE(info.hit);
  EXPECT_GT(info.iterations, 0);

  // No cache traffic at all: the warm result is trajectory-dependent,
  // so it must be neither looked up nor inserted.
  MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 0);
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.size, 0);
  // ... but the executed solve is still accounted.
  EXPECT_EQ(stats.solves, 1);
  EXPECT_EQ(stats.solve_iterations, info.iterations);

  // A cold solve-through of the same problem misses, solves, inserts.
  SolveThroughInfo cold_info;
  auto through = cache.SolveThrough(p, opts, nullptr, &cold_info);
  ASSERT_TRUE(through.ok());
  EXPECT_FALSE(cold_info.hit);
  EXPECT_FALSE(cold_info.warm_started);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.solves, 2);
  EXPECT_EQ(stats.solve_iterations,
            info.iterations + cold_info.iterations);

  // And a repeat is a pure hit: zero additional executed iterations.
  SolveThroughInfo hit_info;
  auto hit = cache.SolveThrough(p, opts, nullptr, &hit_info);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit_info.hit);
  EXPECT_EQ(hit_info.iterations, 0);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.solves, 2);  // unchanged by the hit
}

TEST(MvaWarmStartTest, SeededSolveThroughDropsAMismatchedSeed) {
  MvaSolveCache cache(16);
  const OverlapMvaProblem p = BuildProblem(4, 0.5);
  FlatMatrix wrong;
  wrong.Reshape(1, 1);
  OverlapMvaOptions warm_opts;
  warm_opts.initial_residence = &wrong;

  // The mismatched seed is dropped before the cache decision, so this
  // call takes the normal cold path: lookup (miss), solve, insert.
  SolveThroughInfo info;
  auto sol = cache.SolveThrough(p, warm_opts, nullptr, &info);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(info.warm_started);
  EXPECT_FALSE(info.hit);
  const MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
}

}  // namespace
}  // namespace mrperf
