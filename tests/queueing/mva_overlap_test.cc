#include "queueing/mva_overlap.h"

#include <gtest/gtest.h>

namespace mrperf {
namespace {

OverlapMvaProblem TwoTaskProblem(double overlap) {
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  p.tasks = {{{2.0}}, {{2.0}}};
  p.overlap = {{0.0, overlap}, {overlap, 0.0}};
  return p;
}

TEST(OverlapMvaTest, NoOverlapMeansNoQueueing) {
  auto sol = SolveOverlapMva(TwoTaskProblem(0.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 2.0, 1e-8);
  EXPECT_NEAR(sol->response[1], 2.0, 1e-8);
}

TEST(OverlapMvaTest, FullOverlapDoublesResponseOnSharedCenter) {
  // Two always-concurrent tasks on one server: each sees the other's full
  // presence, so R = S * (1 + 1) = 2S at the fixed point.
  auto sol = SolveOverlapMva(TwoTaskProblem(1.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 4.0, 1e-6);
  EXPECT_NEAR(sol->response[1], 4.0, 1e-6);
}

TEST(OverlapMvaTest, ResponseMonotoneInOverlap) {
  double prev = 0.0;
  for (double theta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto sol = SolveOverlapMva(TwoTaskProblem(theta));
    ASSERT_TRUE(sol.ok());
    EXPECT_GT(sol->response[0], prev - 1e-12) << "theta=" << theta;
    prev = sol->response[0];
  }
}

TEST(OverlapMvaTest, HalfOverlapBetweenExtremes) {
  auto sol = SolveOverlapMva(TwoTaskProblem(0.5));
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->response[0], 2.0);
  EXPECT_LT(sol->response[0], 4.0);
}

TEST(OverlapMvaTest, MultiServerAbsorbsContention) {
  OverlapMvaProblem p = TwoTaskProblem(1.0);
  p.centers[0].server_count = 2;
  auto sol = SolveOverlapMva(p);
  ASSERT_TRUE(sol.ok());
  // Two servers, two tasks: interference halves.
  EXPECT_NEAR(sol->response[0], 2.0 * (1.0 + 0.5), 0.3);
}

TEST(OverlapMvaTest, DisjointCentersDoNotInterfere) {
  OverlapMvaProblem p;
  p.centers = {{"cpu0", CenterType::kQueueing, 1},
               {"cpu1", CenterType::kQueueing, 1}};
  p.tasks = {{{3.0, 0.0}}, {{0.0, 5.0}}};
  p.overlap = {{0.0, 1.0}, {1.0, 0.0}};
  auto sol = SolveOverlapMva(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 3.0, 1e-8);
  EXPECT_NEAR(sol->response[1], 5.0, 1e-8);
}

TEST(OverlapMvaTest, DelayCenterNeverQueues) {
  OverlapMvaProblem p;
  p.centers = {{"net", CenterType::kDelay, 1}};
  p.tasks = {{{4.0}}, {{4.0}}};
  p.overlap = {{0.0, 1.0}, {1.0, 0.0}};
  auto sol = SolveOverlapMva(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 4.0, 1e-9);
}

TEST(OverlapMvaTest, AsymmetricOverlapAffectsOnlyTheOverlapped) {
  // Task 0 is a short task inside task 1's long interval: task 0 sees task
  // 1 the whole time (theta01 = 1) but task 1 sees task 0 only briefly
  // (theta10 = 0.1).
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  p.tasks = {{{1.0}}, {{10.0}}};
  p.overlap = {{0.0, 1.0}, {0.1, 0.0}};
  auto sol = SolveOverlapMva(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 2.0, 0.01);    // 1 * (1 + 1.0 * 1)
  EXPECT_NEAR(sol->response[1], 11.0, 0.05);   // 10 * (1 + 0.1 * 1)
}

TEST(OverlapMvaTest, ManyConcurrentTasksScaleLinearly) {
  // k fully-overlapping identical tasks on one server: R = S * k.
  for (int k : {3, 6, 10}) {
    OverlapMvaProblem p;
    p.centers = {{"cpu", CenterType::kQueueing, 1}};
    p.tasks.assign(k, OverlapTask{{1.0}});
    p.overlap.assign(k, std::vector<double>(k, 1.0));
    for (int i = 0; i < k; ++i) p.overlap[i][i] = 0.0;
    auto sol = SolveOverlapMva(p);
    ASSERT_TRUE(sol.ok()) << "k=" << k;
    EXPECT_NEAR(sol->response[0], static_cast<double>(k), 0.01 * k)
        << "k=" << k;
  }
}

TEST(OverlapMvaTest, ValidationCatchesShapeErrors) {
  OverlapMvaProblem p;
  EXPECT_FALSE(SolveOverlapMva(p).ok());  // no centers

  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  EXPECT_FALSE(SolveOverlapMva(p).ok());  // no tasks

  p.tasks = {{{1.0, 2.0}}};  // wrong demand arity
  p.overlap = {{0.0}};
  EXPECT_FALSE(SolveOverlapMva(p).ok());

  p.tasks = {{{1.0}}};
  p.overlap = {};  // wrong overlap shape
  EXPECT_FALSE(SolveOverlapMva(p).ok());

  p.overlap = {{0.0}};
  p.tasks = {{{0.0}}};  // zero total demand
  EXPECT_FALSE(SolveOverlapMva(p).ok());
}

TEST(OverlapMvaTest, OverlapOutOfRangeRejected) {
  OverlapMvaProblem p = TwoTaskProblem(0.5);
  p.overlap[0][1] = 1.5;
  EXPECT_FALSE(SolveOverlapMva(p).ok());
  p.overlap[0][1] = -0.1;
  EXPECT_FALSE(SolveOverlapMva(p).ok());
}

TEST(OverlapMvaTest, DampingOneStillConverges) {
  OverlapMvaOptions opts;
  opts.damping = 1.0;
  auto sol = SolveOverlapMva(TwoTaskProblem(1.0), opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 4.0, 1e-6);
}

TEST(OverlapMvaTest, ReportsIterationCount) {
  auto sol = SolveOverlapMva(TwoTaskProblem(0.7));
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->iterations, 0);
}

TEST(OverlapMvaTest, ConvergingOnFinalAllowedIterationIsNotAFailure) {
  // Regression: the pre-kernel solver's `++iter; break;` on convergence
  // made a solve that met tolerance exactly on its last allowed
  // iteration satisfy `iter >= max_iterations` and falsely return
  // NotConverged. Learn the natural iteration count, then grant exactly
  // that budget: the solve must succeed.
  auto unconstrained = SolveOverlapMva(TwoTaskProblem(0.7));
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_GT(unconstrained->iterations, 1);

  OverlapMvaOptions exact_budget;
  exact_budget.max_iterations = unconstrained->iterations;
  auto sol = SolveOverlapMva(TwoTaskProblem(0.7), exact_budget);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->iterations, unconstrained->iterations);

  // One iteration less genuinely does not converge.
  exact_budget.max_iterations = unconstrained->iterations - 1;
  auto failed = SolveOverlapMva(TwoTaskProblem(0.7), exact_budget);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsNotConverged())
      << failed.status().ToString();
}

}  // namespace
}  // namespace mrperf
