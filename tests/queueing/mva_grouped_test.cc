/// Group-compressed overlap-MVA: the grouped kernel must solve the same
/// fixed point as the per-task reference within solver tolerance on
/// every problem (random instances included), degenerate bit-for-bit to
/// the blocked path when every class is a singleton, and cache at class
/// granularity so structurally identical problems hit by construction.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "model/overlap.h"
#include "model/timeline.h"
#include "queueing/mva_cache.h"
#include "queueing/mva_kernel.h"
#include "queueing/mva_overlap.h"

namespace mrperf {
namespace {

/// Relative agreement bound between grouped and per-task solves: the
/// paths reorder floating point (count-weighted multiplies vs sibling
/// sums) but iterate the same contraction to tolerance 1e-10.
constexpr double kPathRelTol = 1e-8;

/// Uniform int in [lo, hi] from the repo's deterministic RNG.
int RandInt(Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(
                  rng.UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

/// Figure-shaped grouped problem: G classes striped across nodes with
/// cpu/disk centers, homogeneous θ (intra and inter), `per_group`
/// members each.
GroupedOverlapMvaProblem StripedGroupedProblem(int groups, int per_group,
                                               int nodes, double theta) {
  GroupedOverlapMvaProblem p;
  for (int n = 0; n < nodes; ++n) {
    const std::string id = std::to_string(n);
    p.centers.push_back({"cpu" + id, CenterType::kQueueing, 4});
    p.centers.push_back({"disk" + id, CenterType::kQueueing, 1});
  }
  const size_t K = p.centers.size();
  for (int g = 0; g < groups; ++g) {
    OverlapTaskGroup group;
    group.count = per_group;
    group.demand.assign(K, 0.0);
    group.demand[(g % nodes) * 2] = 8.0 + g;
    group.demand[(g % nodes) * 2 + 1] = 2.0;
    p.groups.push_back(std::move(group));
  }
  p.overlap.assign(groups, std::vector<double>(groups, theta));
  // Interleaved member order, so expansion maps are non-trivial.
  for (int c = 0; c < per_group; ++c) {
    for (int g = 0; g < groups; ++g) p.task_group.push_back(g);
  }
  return p;
}

GroupedOverlapMvaProblem RandomGroupedProblem(Rng& rng) {
  const int groups = RandInt(rng, 1, 8);
  const int centers = RandInt(rng, 1, 5);
  GroupedOverlapMvaProblem p;
  for (int k = 0; k < centers; ++k) {
    const bool delay = RandInt(rng, 0, 9) == 0;
    p.centers.push_back({"c" + std::to_string(k),
                         delay ? CenterType::kDelay : CenterType::kQueueing,
                         RandInt(rng, 1, 4)});
  }
  for (int g = 0; g < groups; ++g) {
    OverlapTaskGroup group;
    group.count = RandInt(rng, 1, 6);
    group.demand.reserve(centers);
    for (int k = 0; k < centers; ++k) {
      const bool sparse = RandInt(rng, 0, 2) == 0;
      group.demand.push_back(sparse ? 0.0 : rng.Uniform(0.1, 10.0));
    }
    bool any = false;
    for (double d : group.demand) any = any || d > 0;
    if (!any) group.demand[0] = 1.0;
    p.groups.push_back(std::move(group));
  }
  p.overlap.assign(groups, std::vector<double>(groups, 0.0));
  for (int g = 0; g < groups; ++g) {
    for (int h = 0; h < groups; ++h) {
      p.overlap[g][h] = rng.Uniform(0.0, 1.0);
    }
  }
  // Shuffled member order.
  for (int g = 0; g < groups; ++g) {
    for (int c = 0; c < p.groups[g].count; ++c) p.task_group.push_back(g);
  }
  for (size_t i = p.task_group.size(); i > 1; --i) {
    std::swap(p.task_group[i - 1],
              p.task_group[rng.UniformInt(static_cast<uint64_t>(i))]);
  }
  return p;
}

Result<OverlapMvaSolution> SolveWith(const GroupedOverlapMvaProblem& p,
                                     MvaKernelPath path,
                                     MvaKernelScratch* scratch = nullptr) {
  OverlapMvaOptions opts;
  opts.kernel = path;
  return SolveGroupedOverlapMva(p, opts, scratch);
}

void ExpectWithinRelTol(const OverlapMvaSolution& ref,
                        const OverlapMvaSolution& got) {
  ASSERT_EQ(ref.response.size(), got.response.size());
  for (size_t i = 0; i < ref.response.size(); ++i) {
    EXPECT_NEAR(ref.response[i], got.response[i],
                kPathRelTol * std::max(1.0, std::abs(ref.response[i])))
        << "task " << i;
    ASSERT_EQ(ref.residence[i].size(), got.residence[i].size());
    for (size_t k = 0; k < ref.residence[i].size(); ++k) {
      EXPECT_NEAR(ref.residence[i][k], got.residence[i][k],
                  kPathRelTol * std::max(1.0, std::abs(ref.residence[i][k])))
          << "task " << i << " center " << k;
    }
  }
}

void ExpectBitIdentical(const OverlapMvaSolution& a,
                        const OverlapMvaSolution& b) {
  ASSERT_EQ(a.response.size(), b.response.size());
  EXPECT_EQ(a.iterations, b.iterations);
  for (size_t i = 0; i < a.response.size(); ++i) {
    EXPECT_EQ(a.response[i], b.response[i]) << "task " << i;
    ASSERT_EQ(a.residence[i].size(), b.residence[i].size());
    for (size_t k = 0; k < a.residence[i].size(); ++k) {
      EXPECT_EQ(a.residence[i][k], b.residence[i][k])
          << "task " << i << " center " << k;
    }
  }
}

TEST(MvaGroupedTest, ExpandMaterializesEquivalentDenseProblem) {
  const GroupedOverlapMvaProblem p = StripedGroupedProblem(3, 4, 4, 0.8);
  const OverlapMvaProblem dense = p.Expand();
  ASSERT_EQ(dense.tasks.size(), p.TotalTasks());
  ASSERT_TRUE(dense.Validate().ok());
  for (size_t i = 0; i < dense.tasks.size(); ++i) {
    EXPECT_EQ(dense.tasks[i].demand, p.groups[p.task_group[i]].demand);
    for (size_t j = 0; j < dense.tasks.size(); ++j) {
      const double expected =
          i == j ? 0.0 : p.overlap[p.task_group[i]][p.task_group[j]];
      EXPECT_EQ(dense.overlap[i][j], expected) << i << "," << j;
    }
  }
}

TEST(MvaGroupedTest, GroupedMatchesScalarReferenceOnFigureShapes) {
  for (int per_group : {1, 3, 16}) {
    for (int groups : {1, 4, 7}) {
      const GroupedOverlapMvaProblem p =
          StripedGroupedProblem(groups, per_group, 4, 0.8);
      auto grouped = SolveWith(p, MvaKernelPath::kGrouped);
      auto scalar = SolveWith(p, MvaKernelPath::kScalar);
      ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
      ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
      ExpectWithinRelTol(*scalar, *grouped);
    }
  }
}

TEST(MvaGroupedTest, GroupedMatchesScalarReferenceOnRandomProblems) {
  // Property test: random class counts/multiplicities/θ (asymmetric,
  // delay centers, sparse demands, shuffled member order).
  Rng rng(0xBADC0DEull);
  for (int trial = 0; trial < 50; ++trial) {
    const GroupedOverlapMvaProblem p = RandomGroupedProblem(rng);
    auto grouped = SolveWith(p, MvaKernelPath::kGrouped);
    auto scalar = SolveWith(p, MvaKernelPath::kScalar);
    ASSERT_EQ(grouped.ok(), scalar.ok()) << "trial " << trial;
    if (!grouped.ok()) continue;  // both NotConverged is agreement too
    ExpectWithinRelTol(*scalar, *grouped);
  }
}

TEST(MvaGroupedTest, SingletonClassesDegenerateBitwiseToBlocked) {
  // With every count == 1 the weighted matrix is θ with a zero diagonal
  // and the grouped iteration is exactly the blocked one: bit-identity,
  // not tolerance (the ISSUE's degenerate-path invariant).
  Rng rng(0x5EEDull);
  for (int trial = 0; trial < 20; ++trial) {
    GroupedOverlapMvaProblem p = RandomGroupedProblem(rng);
    for (auto& g : p.groups) g.count = 1;
    p.task_group.clear();
    for (size_t g = 0; g < p.groups.size(); ++g) {
      p.task_group.push_back(static_cast<int>(g));
    }
    auto grouped = SolveWith(p, MvaKernelPath::kGrouped);
    auto blocked = SolveWith(p, MvaKernelPath::kBlocked);
    ASSERT_EQ(grouped.ok(), blocked.ok()) << "trial " << trial;
    if (!grouped.ok()) continue;
    ExpectBitIdentical(*blocked, *grouped);
  }
}

TEST(MvaGroupedTest, ExpansionFollowsTaskGroupOrder) {
  const GroupedOverlapMvaProblem p = StripedGroupedProblem(3, 2, 4, 0.5);
  auto sol = SolveWith(p, MvaKernelPath::kGrouped);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->response.size(), p.TotalTasks());
  // Members of one class are identical rows; classes differ (demands
  // differ by construction).
  EXPECT_EQ(sol->response[0], sol->response[3]);  // class 0 members
  EXPECT_EQ(sol->residence[1], sol->residence[4]);
  EXPECT_NE(sol->response[0], sol->response[1]);
}

TEST(MvaGroupedTest, GroupLevelSolutionHasOneRowPerClass) {
  GroupedOverlapMvaProblem p = StripedGroupedProblem(3, 5, 4, 0.6);
  auto group_level = SolveGroupedOverlapMvaGroupLevel(p);
  ASSERT_TRUE(group_level.ok());
  EXPECT_EQ(group_level->response.size(), 3u);
  const OverlapMvaSolution expanded =
      ExpandGroupedMvaSolution(*group_level, p.task_group);
  EXPECT_EQ(expanded.response.size(), p.TotalTasks());
  auto direct = SolveWith(p, MvaKernelPath::kGrouped);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*direct, expanded);
}

TEST(MvaGroupedTest, ScratchReuseAcrossGroupedAndDenseSolvesIsClean) {
  MvaKernelScratch scratch;
  const GroupedOverlapMvaProblem big = StripedGroupedProblem(6, 8, 4, 0.7);
  const GroupedOverlapMvaProblem small = StripedGroupedProblem(2, 1, 4, 0.3);
  auto big_fresh = SolveWith(big, MvaKernelPath::kGrouped);
  auto small_fresh = SolveWith(small, MvaKernelPath::kGrouped);
  ASSERT_TRUE(big_fresh.ok());
  ASSERT_TRUE(small_fresh.ok());
  auto big1 = SolveWith(big, MvaKernelPath::kGrouped, &scratch);
  auto dense = SolveWith(big, MvaKernelPath::kBlocked, &scratch);
  auto small1 = SolveWith(small, MvaKernelPath::kGrouped, &scratch);
  auto big2 = SolveWith(big, MvaKernelPath::kGrouped, &scratch);
  ASSERT_TRUE(big1.ok());
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(small1.ok());
  ASSERT_TRUE(big2.ok());
  ExpectBitIdentical(*big_fresh, *big1);
  ExpectBitIdentical(*small_fresh, *small1);
  ExpectBitIdentical(*big_fresh, *big2);
}

TEST(MvaGroupedTest, ResolveAutoPicksGroupedOnlyWhenCompressed) {
  EXPECT_EQ(ResolveGroupedMvaKernelPath(MvaKernelPath::kAuto, 256, 8),
            MvaKernelPath::kGrouped);
  EXPECT_EQ(ResolveGroupedMvaKernelPath(MvaKernelPath::kAuto, 256, 256),
            MvaKernelPath::kBlocked);
  EXPECT_EQ(ResolveGroupedMvaKernelPath(MvaKernelPath::kAuto, 4, 4),
            MvaKernelPath::kScalar);
  EXPECT_EQ(ResolveGroupedMvaKernelPath(MvaKernelPath::kScalar, 256, 8),
            MvaKernelPath::kScalar);
  EXPECT_EQ(ResolveGroupedMvaKernelPath(MvaKernelPath::kGrouped, 4, 4),
            MvaKernelPath::kGrouped);
  // Per-task problems have no group structure: grouped degenerates.
  EXPECT_EQ(ResolveMvaKernelPath(MvaKernelPath::kGrouped, 256),
            MvaKernelPath::kBlocked);
}

TEST(MvaGroupedTest, ValidateCatchesStructuralErrors) {
  const GroupedOverlapMvaProblem good = StripedGroupedProblem(3, 2, 4, 0.5);
  ASSERT_TRUE(good.Validate().ok());

  GroupedOverlapMvaProblem bad = good;
  bad.groups[0].count = 0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.overlap[1].pop_back();
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.overlap[0][1] = 1.5;
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.task_group[0] = 99;
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;
  bad.task_group.pop_back();
  EXPECT_FALSE(bad.Validate().ok());

  bad = good;  // counts disagree with the map
  std::swap(bad.groups[0].count, bad.groups[1].count);
  bad.groups[0].count += 1;
  bad.groups[1].count -= 1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(MvaGroupedCacheTest, CompressedKeysHitAcrossMemberOrderings) {
  // Same compressed form, different member orderings: one solve, two
  // hits, each expanded through its own map.
  GroupedOverlapMvaProblem a = StripedGroupedProblem(3, 2, 4, 0.5);
  GroupedOverlapMvaProblem b = a;
  std::reverse(b.task_group.begin(), b.task_group.end());
  MvaSolveCache cache;
  const OverlapMvaOptions opts;
  auto sa = cache.SolveThrough(a, opts);
  auto sb = cache.SolveThrough(b, opts);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  // b's expansion is a's reversed.
  for (size_t i = 0; i < sa->response.size(); ++i) {
    EXPECT_EQ(sa->response[i], sb->response[sa->response.size() - 1 - i]);
  }
}

TEST(MvaGroupedCacheTest, Period2CycleHitsByConstruction) {
  // The modified-MVA loop's period-2 placement cycle alternates between
  // two problems; from the third solve on everything is a hit.
  const GroupedOverlapMvaProblem a = StripedGroupedProblem(3, 4, 4, 0.5);
  const GroupedOverlapMvaProblem b = StripedGroupedProblem(3, 4, 4, 0.7);
  MvaSolveCache cache;
  const OverlapMvaOptions opts;
  auto a1 = cache.SolveThrough(a, opts);
  auto b1 = cache.SolveThrough(b, opts);
  auto a2 = cache.SolveThrough(a, opts);
  auto b2 = cache.SolveThrough(b, opts);
  ASSERT_TRUE(a1.ok() && b1.ok() && a2.ok() && b2.ok());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 2);
  ExpectBitIdentical(*a1, *a2);
  ExpectBitIdentical(*b1, *b2);
}

TEST(MvaGroupedCacheTest, HitsAreBitIdenticalToRecomputation) {
  const GroupedOverlapMvaProblem p = StripedGroupedProblem(4, 8, 4, 0.8);
  MvaSolveCache cache;
  const OverlapMvaOptions opts;
  auto direct = SolveGroupedOverlapMva(p, opts);
  auto cold = cache.SolveThrough(p, opts);
  auto warm = cache.SolveThrough(p, opts);
  ASSERT_TRUE(direct.ok() && cold.ok() && warm.ok());
  ExpectBitIdentical(*direct, *cold);
  ExpectBitIdentical(*direct, *warm);
}

TEST(MvaGroupedCacheTest, ReferencePathsCacheAtTaskGranularity) {
  // A grouped SolveThrough under a per-task kernel delegates to the
  // dense cache: its entries are shared with dense solves of the
  // expanded problem, and hits stay bit-identical to the dense path.
  const GroupedOverlapMvaProblem p = StripedGroupedProblem(3, 2, 4, 0.5);
  MvaSolveCache cache;
  OverlapMvaOptions opts;
  opts.kernel = MvaKernelPath::kBlocked;
  auto grouped_entry = cache.SolveThrough(p, opts);
  auto dense_entry = cache.SolveThrough(p.Expand(), opts);
  ASSERT_TRUE(grouped_entry.ok());
  ASSERT_TRUE(dense_entry.ok());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  ExpectBitIdentical(*grouped_entry, *dense_entry);
}

TEST(MvaGroupedCacheTest, GroupedAndDenseKeysNeverCollide) {
  const GroupedOverlapMvaProblem p = StripedGroupedProblem(3, 1, 4, 0.5);
  const OverlapMvaOptions opts;
  EXPECT_NE(MvaSolveCache::MakeKey(p, opts),
            MvaSolveCache::MakeKey(p.Expand(), opts));
}

/// Random timeline: tasks draw jobs/nodes/intervals/demands from small
/// pools, so equivalence classes of every multiplicity (including
/// singletons) appear.
Timeline RandomTimeline(Rng& rng) {
  Timeline tl;
  const int jobs = RandInt(rng, 1, 3);
  const int nodes = RandInt(rng, 1, 3);
  const int tasks = RandInt(rng, 2, 30);
  const double starts[] = {0.0, 4.0, 9.0};
  const double durations[] = {5.0, 8.0};
  const double cpus[] = {1.5, 3.0};
  for (int i = 0; i < tasks; ++i) {
    TimelineTask t;
    t.job = RandInt(rng, 0, jobs - 1);
    t.cls = TaskClass::kMap;
    t.index = i;
    t.node = RandInt(rng, 0, nodes - 1);
    const double start = starts[RandInt(rng, 0, 2)];
    t.interval = {start, start + durations[RandInt(rng, 0, 1)]};
    t.demand = {cpus[RandInt(rng, 0, 1)], 0.5, 0.0};
    tl.tasks.push_back(t);
  }
  tl.job_first_start.assign(jobs, 0.0);
  tl.job_end.assign(jobs, 20.0);
  tl.makespan = 20.0;
  return tl;
}

TEST(MvaGroupedTest, RandomTimelinesGroupedPipelineMatchesDense) {
  // End-to-end property over random timelines: grouped factors collapse
  // to G ≤ T classes whose solve agrees with the dense reference within
  // tolerance (and whose θ blocks expand to the dense matrix exactly).
  Rng rng(0x7135ABCDull);
  for (int trial = 0; trial < 30; ++trial) {
    const Timeline tl = RandomTimeline(rng);
    auto dense_f = ComputeOverlapFactors(tl);
    auto grouped_f = ComputeGroupedOverlapFactors(tl);
    ASSERT_TRUE(dense_f.ok());
    ASSERT_TRUE(grouped_f.ok());
    const size_t T = tl.tasks.size();
    ASSERT_LE(grouped_f->groups.size(), T);  // G ≤ T invariant

    // Dense per-task problem: one cpu/disk center pair per node.
    int max_node = 0;
    for (const auto& t : tl.tasks) max_node = std::max(max_node, t.node);
    std::vector<ServiceCenter> centers;
    for (int n = 0; n <= max_node; ++n) {
      centers.push_back({"cpu" + std::to_string(n), CenterType::kQueueing,
                         2});
      centers.push_back({"disk" + std::to_string(n), CenterType::kQueueing,
                         1});
    }
    OverlapMvaProblem dense;
    dense.centers = centers;
    for (const auto& t : tl.tasks) {
      OverlapTask task;
      task.demand.assign(centers.size(), 0.0);
      task.demand[static_cast<size_t>(t.node) * 2] = t.demand.cpu;
      task.demand[static_cast<size_t>(t.node) * 2 + 1] = t.demand.disk;
      dense.tasks.push_back(std::move(task));
    }
    dense.overlap = dense_f->theta;

    GroupedOverlapMvaProblem grouped;
    grouped.centers = centers;
    for (const OverlapGroup& g : grouped_f->groups) {
      OverlapTaskGroup group;
      group.count = g.count;
      group.demand.assign(centers.size(), 0.0);
      group.demand[static_cast<size_t>(g.node) * 2] = g.demand.cpu;
      group.demand[static_cast<size_t>(g.node) * 2 + 1] = g.demand.disk;
      grouped.groups.push_back(std::move(group));
    }
    grouped.overlap = grouped_f->theta;
    grouped.task_group = grouped_f->task_group;
    ASSERT_TRUE(grouped.Validate().ok());

    // The grouped problem's expansion is the dense problem, entry for
    // entry (bit-identical θ blocks).
    const OverlapMvaProblem expanded = grouped.Expand();
    ASSERT_EQ(expanded.tasks.size(), T);
    for (size_t i = 0; i < T; ++i) {
      EXPECT_EQ(expanded.tasks[i].demand, dense.tasks[i].demand);
      for (size_t j = 0; j < T; ++j) {
        if (i == j) continue;
        EXPECT_EQ(expanded.overlap[i][j], dense.overlap[i][j]);
      }
    }

    OverlapMvaOptions scalar_opts;
    scalar_opts.kernel = MvaKernelPath::kScalar;
    auto reference = SolveOverlapMva(dense, scalar_opts);
    auto compressed = SolveWith(grouped, MvaKernelPath::kGrouped);
    ASSERT_EQ(reference.ok(), compressed.ok()) << "trial " << trial;
    if (!reference.ok()) continue;
    ExpectWithinRelTol(*reference, *compressed);
  }
}

TEST(MvaGroupedTest, InvalidProblemRejectedAtApiEntry) {
  GroupedOverlapMvaProblem p = StripedGroupedProblem(2, 2, 4, 0.5);
  p.overlap[0][1] = 2.0;
  EXPECT_FALSE(SolveGroupedOverlapMva(p).ok());
  MvaSolveCache cache;
  EXPECT_FALSE(cache.SolveThrough(p, OverlapMvaOptions{}).ok());
}

}  // namespace
}  // namespace mrperf
