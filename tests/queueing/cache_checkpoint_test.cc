/// Checkpoint/recover robustness: round-trips (including across
/// implementations), every corruption class the codec guards against
/// (truncation, bit flips, bad magic, unknown versions, trailing
/// garbage), capacity-limited recovery evicting LRU-first, and the
/// lifecycle counters surfaced through stats().

#include "queueing/cache_checkpoint.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "queueing/mva_cache.h"
#include "queueing/sharded_solve_cache.h"
#include "queueing/solve_cache.h"

namespace mrperf {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

OverlapMvaProblem TwoTaskProblem(double overlap) {
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  p.tasks = {{{2.0}}, {{2.0}}};
  p.overlap = {{0.0, overlap}, {overlap, 0.0}};
  return p;
}

/// Fills `cache` with `n` solved problems (thetas 0.01..0.01*n).
void Warm(SolveCache& cache, int n) {
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.01 * i), {}).ok());
  }
}

TEST(CacheCheckpointCodecTest, RoundTripPreservesEntriesAndOrder) {
  std::vector<CacheCheckpointEntry> entries;
  for (int i = 0; i < 5; ++i) {
    CacheCheckpointEntry e;
    e.key = "key-" + std::to_string(i) + std::string(i, '\0');  // binary keys
    e.solution.residence = {{1.0 * i, 2.0 * i}, {3.0 * i, 4.0 * i}};
    e.solution.response = {3.0 * i, 7.0 * i};
    e.solution.iterations = i;
    entries.push_back(e);
  }
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, entries).ok());

  auto read = ReadCacheCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*read)[i].key, entries[i].key);
    EXPECT_EQ((*read)[i].solution.residence, entries[i].solution.residence);
    EXPECT_EQ((*read)[i].solution.response, entries[i].solution.response);
    EXPECT_EQ((*read)[i].solution.iterations, entries[i].solution.iterations);
  }
  std::remove(path.c_str());
}

TEST(CacheCheckpointCodecTest, EmptyCheckpointRoundTrips) {
  const std::string path = TempPath("empty.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, {}).ok());
  auto read = ReadCacheCheckpoint(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(CacheCheckpointCodecTest, MissingFileIsNotFound) {
  auto read = ReadCacheCheckpoint(TempPath("does-not-exist.ckpt"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(CacheCheckpointCodecTest, EveryTruncationIsRejected) {
  std::vector<CacheCheckpointEntry> entries(1);
  entries[0].key = "k";
  entries[0].solution.residence = {{1.0}};
  entries[0].solution.response = {1.0};
  const std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, entries).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 4u);

  // Cut the file at every prefix length: none may parse, none may crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFileBytes(path, bytes.substr(0, cut));
    auto read = ReadCacheCheckpoint(path);
    EXPECT_FALSE(read.ok()) << "truncation at " << cut << " parsed";
  }
  std::remove(path.c_str());
}

TEST(CacheCheckpointCodecTest, EveryBitFlipIsRejected) {
  std::vector<CacheCheckpointEntry> entries(1);
  entries[0].key = "bitflip-key";
  entries[0].solution.residence = {{1.5, 2.5}};
  entries[0].solution.response = {4.0};
  entries[0].solution.iterations = 7;
  const std::string path = TempPath("flip.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, entries).ok());
  const std::string bytes = ReadFileBytes(path);

  // Flip one bit in every byte (header, payload, CRC itself): the CRC
  // or a structural check must catch each one.
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
    WriteFileBytes(path, corrupt);
    auto read = ReadCacheCheckpoint(path);
    EXPECT_FALSE(read.ok()) << "bit flip at byte " << at << " parsed";
  }
  std::remove(path.c_str());
}

TEST(CacheCheckpointCodecTest, WrongVersionIsRejected) {
  const std::string path = TempPath("version.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, {}).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[4] = static_cast<char>(kCacheCheckpointVersion + 1);
  // Re-seal the CRC so only the version differs.
  const std::string body = bytes.substr(0, bytes.size() - 4);
  const uint32_t crc = CacheCheckpointCrc32(body);
  for (int i = 0; i < 4; ++i) {
    bytes[body.size() + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  WriteFileBytes(path, bytes);
  auto read = ReadCacheCheckpoint(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CacheCheckpointCodecTest, BadMagicIsRejected) {
  const std::string path = TempPath("magic.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, {}).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  const std::string body = bytes.substr(0, bytes.size() - 4);
  const uint32_t crc = CacheCheckpointCrc32(body);
  for (int i = 0; i < 4; ++i) {
    bytes[body.size() + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ReadCacheCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(CacheCheckpointCodecTest, TrailingGarbageIsRejected) {
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(WriteCacheCheckpoint(path, {}).ok());
  WriteFileBytes(path, ReadFileBytes(path) + "extra");
  EXPECT_FALSE(ReadCacheCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, CheckpointRecoverRoundTripsBitIdentically) {
  MvaSolveCache source(/*max_entries=*/64);
  Warm(source, 6);
  const std::string path = TempPath("cache-roundtrip.ckpt");
  ASSERT_TRUE(source.Checkpoint(path).ok());

  MvaSolveCache restored(/*max_entries=*/64);
  ASSERT_TRUE(restored.Recover(path).ok());
  EXPECT_EQ(restored.stats().size, 6);
  for (int i = 1; i <= 6; ++i) {
    const std::string key =
        SolveCache::MakeKey(TwoTaskProblem(0.01 * i), {});
    auto original = source.Lookup(key);
    auto recovered = restored.Lookup(key);
    ASSERT_TRUE(original.has_value());
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(original->response, recovered->response);
    EXPECT_EQ(original->residence, recovered->residence);
  }
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, SingleMutexCheckpointWarmsShardedCache) {
  // The format is implementation-independent: a single-mutex checkpoint
  // recovers into a sharded cache (and the hits stay bit-identical).
  MvaSolveCache source(/*max_entries=*/64);
  Warm(source, 5);
  const std::string path = TempPath("cross-impl.ckpt");
  ASSERT_TRUE(source.Checkpoint(path).ok());

  ShardedSolveCache restored(/*shards=*/8, /*max_entries=*/64);
  ASSERT_TRUE(restored.Recover(path).ok());
  EXPECT_EQ(restored.stats().size, 5);
  for (int i = 1; i <= 5; ++i) {
    auto hit = restored.SolveThrough(TwoTaskProblem(0.01 * i), {});
    ASSERT_TRUE(hit.ok());
  }
  EXPECT_EQ(restored.stats().hits, 5);  // every replay was a hit
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, RecoverIntoSmallerCacheKeepsNewestEntries) {
  MvaSolveCache source(/*max_entries=*/64);
  Warm(source, 8);  // insertion order == recency order here
  const std::string path = TempPath("shrink.ckpt");
  ASSERT_TRUE(source.Checkpoint(path).ok());

  MvaSolveCache small(/*max_entries=*/3);
  ASSERT_TRUE(small.Recover(path).ok());
  EXPECT_EQ(small.stats().size, 3);
  // Entries are replayed LRU-first, so the 3 most recent survive.
  for (int i = 6; i <= 8; ++i) {
    EXPECT_TRUE(
        small.Lookup(SolveCache::MakeKey(TwoTaskProblem(0.01 * i), {}))
            .has_value())
        << "theta index " << i;
  }
  EXPECT_FALSE(
      small.Lookup(SolveCache::MakeKey(TwoTaskProblem(0.01), {})).has_value());
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, RecoverKeepsExistingEntriesOverFileEntries) {
  MvaSolveCache source(/*max_entries=*/64);
  Warm(source, 3);
  const std::string path = TempPath("merge.ckpt");
  ASSERT_TRUE(source.Checkpoint(path).ok());

  MvaSolveCache target(/*max_entries=*/64);
  Warm(target, 1);  // theta 0.01 already resident
  ASSERT_TRUE(target.Recover(path).ok());
  EXPECT_EQ(target.stats().size, 3);  // duplicate key was a no-op
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, LifecycleCountersSurviveResetStats) {
  MvaSolveCache cache(/*max_entries=*/64);
  Warm(cache, 4);
  const std::string path = TempPath("lifecycle.ckpt");
  ASSERT_TRUE(cache.Checkpoint(path).ok());

  MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.checkpoints, 1);
  EXPECT_EQ(stats.checkpoint_entries, 4);
  EXPECT_EQ(stats.recoveries, 0);

  ShardedSolveCache restored(/*shards=*/4, /*max_entries=*/64);
  ASSERT_TRUE(restored.Recover(path).ok());
  stats = restored.stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.recovered_entries, 4);

  // Lifecycle counters are gauges: the window reset must not clear them.
  restored.ResetStats();
  stats = restored.stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.recovered_entries, 4);
  EXPECT_EQ(stats.size, 4);
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, RecoverFromCorruptFileFailsWithoutCrashing) {
  const std::string path = TempPath("corrupt-recover.ckpt");
  WriteFileBytes(path, "MRSC this is not a checkpoint");
  MvaSolveCache cache(/*max_entries=*/64);
  const Status status = cache.Recover(path);
  ASSERT_FALSE(status.ok());
  // A failed recovery neither warms the cache nor counts as a recovery.
  EXPECT_EQ(cache.stats().size, 0);
  EXPECT_EQ(cache.stats().recoveries, 0);
  std::remove(path.c_str());
}

TEST(SolveCacheCheckpointTest, CheckpointOverwritesAtomically) {
  MvaSolveCache first(/*max_entries=*/64);
  Warm(first, 2);
  const std::string path = TempPath("overwrite.ckpt");
  ASSERT_TRUE(first.Checkpoint(path).ok());

  MvaSolveCache second(/*max_entries=*/64);
  Warm(second, 5);
  ASSERT_TRUE(second.Checkpoint(path).ok());  // rename over the old file

  auto read = ReadCacheCheckpoint(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 5u);  // the newer checkpoint won, intact
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrperf
