#include "queueing/mva_approx.h"

#include <gtest/gtest.h>

#include "queueing/mva_exact.h"

namespace mrperf {
namespace {

ClosedNetwork PaperStyleNetwork(int jobs) {
  // 3 task classes (map, shuffle-sort, merge) on 2 centers (CPU&Memory,
  // Network) — the paper's dimensions.
  ClosedNetwork net;
  net.centers = {{"cpu_mem", CenterType::kQueueing, 4},
                 {"network", CenterType::kQueueing, 1}};
  net.demand = {{8.0, 0.0}, {1.0, 3.0}, {4.0, 0.5}};
  net.population = {8 * jobs, 2 * jobs, 2 * jobs};
  net.think_time = {0.0, 0.0, 0.0};
  return net;
}

TEST(MvaApproxTest, SingleCustomerIsExact) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1}};
  net.demand = {{2.0}};
  net.population = {1};
  net.think_time = {0.0};
  auto sol = SolveMvaApprox(net);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 2.0, 1e-8);
}

class ApproxVsExactTest : public ::testing::TestWithParam<int> {};

TEST_P(ApproxVsExactTest, WithinToleranceOfExact) {
  // Bard–Schweitzer deviates from exact MVA by up to ~10% at small
  // populations (the well-documented regime of the approximation);
  // property-check across populations.
  const int jobs = GetParam();
  ClosedNetwork net = PaperStyleNetwork(jobs);
  auto exact = SolveMvaExact(net);
  auto approx = SolveMvaApprox(net);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  for (size_t c = 0; c < net.num_classes(); ++c) {
    EXPECT_NEAR(approx->response[c] / exact->response[c], 1.0, 0.12)
        << "class " << c << " jobs " << jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(Populations, ApproxVsExactTest,
                         ::testing::Values(1, 2, 3));

TEST(MvaApproxTest, LittlesLawHolds) {
  ClosedNetwork net = PaperStyleNetwork(2);
  auto sol = SolveMvaApprox(net);
  ASSERT_TRUE(sol.ok());
  for (size_t c = 0; c < net.num_classes(); ++c) {
    EXPECT_NEAR(net.population[c],
                sol->throughput[c] * (sol->response[c] + net.think_time[c]),
                1e-6 * net.population[c])
        << "class " << c;
  }
}

TEST(MvaApproxTest, UtilizationBelowOne) {
  ClosedNetwork net = PaperStyleNetwork(3);
  auto sol = SolveMvaApprox(net);
  ASSERT_TRUE(sol.ok());
  for (double u : sol->utilization) {
    EXPECT_LE(u, 1.0 + 1e-6);
    EXPECT_GE(u, 0.0);
  }
}

TEST(MvaApproxTest, ResponseMonotoneInPopulation) {
  double prev = 0.0;
  for (int jobs = 1; jobs <= 4; ++jobs) {
    auto sol = SolveMvaApprox(PaperStyleNetwork(jobs));
    ASSERT_TRUE(sol.ok());
    EXPECT_GT(sol->response[0], prev);
    prev = sol->response[0];
  }
}

TEST(MvaApproxTest, DampingStillConverges) {
  ApproxMvaOptions opts;
  opts.damping = 0.3;
  auto sol = SolveMvaApprox(PaperStyleNetwork(2), opts);
  ASSERT_TRUE(sol.ok());
  auto plain = SolveMvaApprox(PaperStyleNetwork(2));
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(sol->response[0], plain->response[0], 1e-6);
}

TEST(MvaApproxTest, IterationCapReported) {
  ApproxMvaOptions opts;
  opts.max_iterations = 1;
  auto sol = SolveMvaApprox(PaperStyleNetwork(4), opts);
  EXPECT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsNotConverged());
}

TEST(MvaApproxTest, RejectsBadOptions) {
  ApproxMvaOptions opts;
  opts.damping = 0.0;
  EXPECT_FALSE(SolveMvaApprox(PaperStyleNetwork(1), opts).ok());
  opts.damping = 1.5;
  EXPECT_FALSE(SolveMvaApprox(PaperStyleNetwork(1), opts).ok());
  opts.damping = 1.0;
  opts.tolerance = 0.0;
  EXPECT_FALSE(SolveMvaApprox(PaperStyleNetwork(1), opts).ok());
}

TEST(MvaApproxTest, DelayCenterResidenceEqualsDemand) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1},
                 {"sleep", CenterType::kDelay, 1}};
  net.demand = {{1.0, 7.0}};
  net.population = {5};
  net.think_time = {0.0};
  auto sol = SolveMvaApprox(net);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->residence[0][1], 7.0, 1e-9);
}

TEST(MvaApproxTest, ConvergingOnFinalAllowedIterationIsNotAFailure) {
  // Regression (same off-by-one as the overlap solver): meeting
  // tolerance exactly on the last allowed iteration must count as
  // convergence, not trip the iteration-budget failure check.
  const ClosedNetwork net = PaperStyleNetwork(2);
  auto unconstrained = SolveMvaApprox(net);
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_GT(unconstrained->iterations, 1);

  ApproxMvaOptions exact_budget;
  exact_budget.max_iterations = unconstrained->iterations;
  auto sol = SolveMvaApprox(net, exact_budget);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->iterations, unconstrained->iterations);

  exact_budget.max_iterations = unconstrained->iterations - 1;
  auto failed = SolveMvaApprox(net, exact_budget);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsNotConverged());
}

TEST(MvaApproxTest, ScalesToLargePopulations) {
  // The whole point of the approximation: populations far beyond the
  // exact recursion's reach.
  ClosedNetwork net = PaperStyleNetwork(200);
  auto sol = SolveMvaApprox(net);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->response[0], 0.0);
  EXPECT_LE(sol->utilization[0], 1.0 + 1e-6);
}

}  // namespace
}  // namespace mrperf
