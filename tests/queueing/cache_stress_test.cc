/// TSan-targeted stress tests for the solve-cache concurrency
/// contracts: Checkpoint() racing lookups, inserts and eviction churn
/// on a ShardedSolveCache; Recover() racing live traffic; and
/// stats()/ResetStats() snapshots staying internally consistent while
/// every shard is being mutated. These tests assert functional
/// outcomes, but their main job is to give ThreadSanitizer (cmake
/// --preset tsan) real interleavings to chew on.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "queueing/mva_cache.h"
#include "queueing/sharded_solve_cache.h"
#include "queueing/solve_cache.h"

namespace mrperf {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Synthetic (key, solution) pair; distinct per index so recovered
/// entries can be verified against their key.
std::string KeyFor(int i) { return "stress-key-" + std::to_string(i); }

OverlapMvaSolution SolutionFor(int i) {
  OverlapMvaSolution solution;
  solution.residence = {{1.0 * i, 2.0 * i}};
  solution.response = {3.0 * i};
  solution.iterations = i;
  return solution;
}

TEST(CacheStressTest, CheckpointRacesLookupsInsertsAndEviction) {
  // Cap far below the key range: every mutator loop evicts constantly,
  // so Checkpoint's ForEachEntry walk races both LRU splices (lookup
  // hits) and entry destruction (eviction).
  ShardedSolveCache cache(8, /*max_entries=*/64);
  const std::string path = TempPath("stress_ckpt.bin");
  constexpr int kKeys = 256;
  constexpr int kMutators = 4;
  constexpr int kIterations = 2000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  mutators.reserve(kMutators);
  for (int t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&cache, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int k = (i * (t + 1)) % kKeys;
        if (!cache.Lookup(KeyFor(k))) {
          cache.Insert(KeyFor(k), SolutionFor(k));
        }
      }
    });
  }
  std::thread checkpointer([&cache, &path, &stop] {
    int written = 0;
    while (!stop.load(std::memory_order_relaxed) || written == 0) {
      ASSERT_TRUE(cache.Checkpoint(path).ok());
      ++written;
    }
  });
  for (std::thread& m : mutators) m.join();
  stop.store(true, std::memory_order_relaxed);
  checkpointer.join();
  // One more checkpoint with the world stopped: it holds exactly the
  // resident working set; a cold cache must recover it and serve every
  // recovered entry with the exact inserted bytes.
  ASSERT_TRUE(cache.Checkpoint(path).ok());
  MvaSolveCache recovered(/*max_entries=*/256);
  ASSERT_TRUE(recovered.Recover(path).ok());
  const MvaCacheStats stats = recovered.stats();
  EXPECT_GT(stats.recovered_entries, 0);
  EXPECT_LE(stats.recovered_entries, 64);
  int verified = 0;
  for (int k = 0; k < kKeys; ++k) {
    if (auto hit = recovered.Lookup(KeyFor(k))) {
      EXPECT_EQ(hit->response, SolutionFor(k).response);
      ++verified;
    }
  }
  EXPECT_EQ(verified, stats.recovered_entries);
  std::remove(path.c_str());
}

TEST(CacheStressTest, RecoverRacesLiveTraffic) {
  // Seed a checkpoint, then replay it into a cache that is concurrently
  // serving lookups and inserts: recovery is just Insert calls, so live
  // traffic must keep its exact-byte guarantee throughout.
  const std::string path = TempPath("stress_recover.bin");
  {
    MvaSolveCache seed(128);
    for (int i = 0; i < 100; ++i) seed.Insert(KeyFor(i), SolutionFor(i));
    ASSERT_TRUE(seed.Checkpoint(path).ok());
  }

  ShardedSolveCache cache(4, 512);
  constexpr int kLiveBase = 1000;  // disjoint from the checkpoint's keys
  std::vector<std::thread> traffic;
  traffic.reserve(3);
  for (int t = 0; t < 3; ++t) {
    traffic.emplace_back([&cache, t] {
      for (int i = 0; i < 3000; ++i) {
        const int k = kLiveBase + ((i * (t + 1)) % 200);
        if (auto hit = cache.Lookup(KeyFor(k))) {
          ASSERT_EQ(hit->response, SolutionFor(k).response);
        } else {
          cache.Insert(KeyFor(k), SolutionFor(k));
        }
      }
    });
  }
  ASSERT_TRUE(cache.Recover(path).ok());
  for (std::thread& t : traffic) t.join();

  // Both the recovered and the live working set are resident (cap was
  // never exceeded), each with its own exact bytes.
  for (int i = 0; i < 100; ++i) {
    auto hit = cache.Lookup(KeyFor(i));
    ASSERT_TRUE(hit.has_value()) << "lost recovered key " << i;
    EXPECT_EQ(hit->response, SolutionFor(i).response);
  }
  std::remove(path.c_str());
}

TEST(CacheStressTest, StatsAndResetStatsRaceMutators) {
  ShardedSolveCache cache(4, 32);
  constexpr int kKeys = 128;
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  mutators.reserve(2);
  for (int t = 0; t < 2; ++t) {
    mutators.emplace_back([&cache, t] {
      for (int i = 0; i < 4000; ++i) {
        const int k = (i * (t + 3)) % kKeys;
        if (!cache.Lookup(KeyFor(k))) {
          cache.Insert(KeyFor(k), SolutionFor(k));
        }
      }
    });
  }
  std::thread reader([&cache, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      // size == insertions - evictions only holds for a window that was
      // never reset (the existing snapshot-consistency test pins that);
      // here the point is the interleaving itself — snapshot-and-reset
      // racing every shard's mutators — plus basic sanity.
      const MvaCacheStats live = cache.stats();
      EXPECT_GE(live.size, 0);
      EXPECT_LE(live.size, 32);
      const MvaCacheStats window = cache.ResetStats();
      EXPECT_GE(window.hits, 0);
      EXPECT_GE(window.misses, 0);
    }
  });
  for (std::thread& m : mutators) m.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

}  // namespace
}  // namespace mrperf
