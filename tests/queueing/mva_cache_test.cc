#include "queueing/mva_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mrperf {
namespace {

OverlapMvaProblem TwoTaskProblem(double overlap, double demand = 2.0) {
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  p.tasks = {{{demand}}, {{demand}}};
  p.overlap = {{0.0, overlap}, {overlap, 0.0}};
  return p;
}

TEST(MvaCacheKeyTest, IdenticalProblemsShareAKey) {
  const OverlapMvaOptions opts;
  EXPECT_EQ(MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts),
            MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts));
}

TEST(MvaCacheKeyTest, KeyCoversProblemAndOptions) {
  const OverlapMvaOptions opts;
  const std::string base = MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts);

  EXPECT_NE(MvaSolveCache::MakeKey(TwoTaskProblem(0.6), opts), base);
  EXPECT_NE(MvaSolveCache::MakeKey(TwoTaskProblem(0.5, 3.0), opts), base);

  OverlapMvaProblem more_servers = TwoTaskProblem(0.5);
  more_servers.centers[0].server_count = 2;
  EXPECT_NE(MvaSolveCache::MakeKey(more_servers, opts), base);

  OverlapMvaOptions tighter;
  tighter.tolerance = 1e-12;
  EXPECT_NE(MvaSolveCache::MakeKey(TwoTaskProblem(0.5), tighter), base);
}

TEST(MvaCacheKeyTest, CenterNamesDoNotAffectTheKey) {
  const OverlapMvaOptions opts;
  OverlapMvaProblem renamed = TwoTaskProblem(0.5);
  renamed.centers[0].name = "other-label";
  EXPECT_EQ(MvaSolveCache::MakeKey(renamed, opts),
            MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts));
}

TEST(MvaCacheTest, SolveThroughMatchesDirectSolveExactly) {
  MvaSolveCache cache;
  const OverlapMvaProblem problem = TwoTaskProblem(0.7);
  const OverlapMvaOptions opts;

  auto direct = SolveOverlapMva(problem, opts);
  ASSERT_TRUE(direct.ok());

  auto miss = cache.SolveThrough(problem, opts);
  ASSERT_TRUE(miss.ok());
  auto hit = cache.SolveThrough(problem, opts);
  ASSERT_TRUE(hit.ok());

  for (size_t i = 0; i < direct->response.size(); ++i) {
    EXPECT_EQ(miss->response[i], direct->response[i]);
    EXPECT_EQ(hit->response[i], direct->response[i]);  // bit-identical
  }
  const MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.size, 1);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(MvaCacheTest, ErrorsAreNotCached) {
  MvaSolveCache cache;
  OverlapMvaProblem bad = TwoTaskProblem(0.5);
  bad.overlap[0][1] = 2.0;  // invalid: theta must be in [0, 1]
  EXPECT_FALSE(cache.SolveThrough(bad, {}).ok());
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(cache.stats().size, 0);
}

TEST(MvaCacheTest, CapacityCapStopsInsertions) {
  MvaSolveCache cache(/*max_entries=*/2);
  for (double theta : {0.1, 0.2, 0.3, 0.4}) {
    ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(theta), {}).ok());
  }
  EXPECT_EQ(cache.stats().size, 2);
  // Evicted/uninserted problems still solve correctly.
  auto again = cache.SolveThrough(TwoTaskProblem(0.4), {});
  ASSERT_TRUE(again.ok());
}

TEST(MvaCacheTest, ClearResetsEntriesAndStats) {
  MvaSolveCache cache;
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.5), {}).ok());
  cache.Clear();
  const MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 0);
  EXPECT_EQ(stats.lookups(), 0);
  EXPECT_EQ(stats.insertions, 0);
}

TEST(MvaCacheTest, ConcurrentSolveThroughIsSafeAndConsistent) {
  MvaSolveCache cache;
  const OverlapMvaProblem problem = TwoTaskProblem(0.9);
  auto direct = SolveOverlapMva(problem, {});
  ASSERT_TRUE(direct.ok());

  std::vector<std::thread> threads;
  std::vector<double> responses(8, 0.0);
  for (size_t t = 0; t < responses.size(); ++t) {
    threads.emplace_back([&cache, &problem, &responses, t] {
      for (int i = 0; i < 50; ++i) {
        auto sol = cache.SolveThrough(problem, {});
        ASSERT_TRUE(sol.ok());
        responses[t] = sol->response[0];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (double r : responses) {
    EXPECT_EQ(r, direct->response[0]);
  }
  EXPECT_EQ(cache.stats().lookups(), 8 * 50);
  EXPECT_EQ(cache.stats().size, 1);
}

}  // namespace
}  // namespace mrperf
