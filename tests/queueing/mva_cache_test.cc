#include "queueing/mva_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mrperf {
namespace {

OverlapMvaProblem TwoTaskProblem(double overlap, double demand = 2.0) {
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  p.tasks = {{{demand}}, {{demand}}};
  p.overlap = {{0.0, overlap}, {overlap, 0.0}};
  return p;
}

TEST(MvaCacheKeyTest, IdenticalProblemsShareAKey) {
  const OverlapMvaOptions opts;
  EXPECT_EQ(MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts),
            MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts));
}

TEST(MvaCacheKeyTest, KeyCoversProblemAndOptions) {
  const OverlapMvaOptions opts;
  const std::string base = MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts);

  EXPECT_NE(MvaSolveCache::MakeKey(TwoTaskProblem(0.6), opts), base);
  EXPECT_NE(MvaSolveCache::MakeKey(TwoTaskProblem(0.5, 3.0), opts), base);

  OverlapMvaProblem more_servers = TwoTaskProblem(0.5);
  more_servers.centers[0].server_count = 2;
  EXPECT_NE(MvaSolveCache::MakeKey(more_servers, opts), base);

  OverlapMvaOptions tighter;
  tighter.tolerance = 1e-12;
  EXPECT_NE(MvaSolveCache::MakeKey(TwoTaskProblem(0.5), tighter), base);
}

TEST(MvaCacheKeyTest, CenterNamesDoNotAffectTheKey) {
  const OverlapMvaOptions opts;
  OverlapMvaProblem renamed = TwoTaskProblem(0.5);
  renamed.centers[0].name = "other-label";
  EXPECT_EQ(MvaSolveCache::MakeKey(renamed, opts),
            MvaSolveCache::MakeKey(TwoTaskProblem(0.5), opts));
}

TEST(MvaCacheTest, SolveThroughMatchesDirectSolveExactly) {
  MvaSolveCache cache;
  const OverlapMvaProblem problem = TwoTaskProblem(0.7);
  const OverlapMvaOptions opts;

  auto direct = SolveOverlapMva(problem, opts);
  ASSERT_TRUE(direct.ok());

  auto miss = cache.SolveThrough(problem, opts);
  ASSERT_TRUE(miss.ok());
  auto hit = cache.SolveThrough(problem, opts);
  ASSERT_TRUE(hit.ok());

  for (size_t i = 0; i < direct->response.size(); ++i) {
    EXPECT_EQ(miss->response[i], direct->response[i]);
    EXPECT_EQ(hit->response[i], direct->response[i]);  // bit-identical
  }
  const MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.size, 1);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(MvaCacheTest, ErrorsAreNotCached) {
  MvaSolveCache cache;
  OverlapMvaProblem bad = TwoTaskProblem(0.5);
  bad.overlap[0][1] = 2.0;  // invalid: theta must be in [0, 1]
  EXPECT_FALSE(cache.SolveThrough(bad, {}).ok());
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(cache.stats().size, 0);
}

TEST(MvaCacheTest, LruEvictionKeepsMostRecentEntries) {
  MvaSolveCache cache(/*max_entries=*/2);
  for (double theta : {0.1, 0.2, 0.3, 0.4}) {
    ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(theta), {}).ok());
  }
  MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 2);
  EXPECT_EQ(stats.insertions, 4);
  EXPECT_EQ(stats.evictions, 2);

  // The two most recent problems are resident; the two oldest were
  // evicted in LRU order.
  const OverlapMvaOptions opts;
  EXPECT_TRUE(cache.Lookup(MvaSolveCache::MakeKey(TwoTaskProblem(0.4), opts))
                  .has_value());
  EXPECT_TRUE(cache.Lookup(MvaSolveCache::MakeKey(TwoTaskProblem(0.3), opts))
                  .has_value());
  EXPECT_FALSE(
      cache.Lookup(MvaSolveCache::MakeKey(TwoTaskProblem(0.1), opts))
          .has_value());
  EXPECT_FALSE(
      cache.Lookup(MvaSolveCache::MakeKey(TwoTaskProblem(0.2), opts))
          .has_value());
  // Evicted problems still solve correctly (re-inserted on miss).
  auto again = cache.SolveThrough(TwoTaskProblem(0.1), {});
  ASSERT_TRUE(again.ok());
}

TEST(MvaCacheTest, LookupRefreshesRecency) {
  MvaSolveCache cache(/*max_entries=*/2);
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.1), {}).ok());
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.2), {}).ok());
  // Touch 0.1 so 0.2 becomes the LRU victim.
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.1), {}).ok());
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.3), {}).ok());

  const OverlapMvaOptions opts;
  EXPECT_TRUE(cache.Lookup(MvaSolveCache::MakeKey(TwoTaskProblem(0.1), opts))
                  .has_value());
  EXPECT_FALSE(
      cache.Lookup(MvaSolveCache::MakeKey(TwoTaskProblem(0.2), opts))
          .has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(MvaCacheTest, EvictedEntriesComeBackBitIdentical) {
  // A solution that is evicted and re-solved must match the original
  // bits — eviction can change performance, never results.
  MvaSolveCache cache(/*max_entries=*/1);
  auto first = cache.SolveThrough(TwoTaskProblem(0.6), {});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.7), {}).ok());  // evicts
  auto second = cache.SolveThrough(TwoTaskProblem(0.6), {});
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < first->response.size(); ++i) {
    EXPECT_EQ(first->response[i], second->response[i]);
  }
}

TEST(MvaCacheTest, ClearResetsEntriesAndStats) {
  MvaSolveCache cache;
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.5), {}).ok());
  cache.Clear();
  const MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 0);
  EXPECT_EQ(stats.lookups(), 0);
  EXPECT_EQ(stats.insertions, 0);
}

TEST(MvaCacheTest, ResetStatsZerosCountersButKeepsEntries) {
  MvaSolveCache cache;
  auto first = cache.SolveThrough(TwoTaskProblem(0.4), {});  // miss+insert
  ASSERT_TRUE(first.ok());
  auto second = cache.SolveThrough(TwoTaskProblem(0.4), {});  // hit
  ASSERT_TRUE(second.ok());

  const MvaCacheStats before = cache.stats();
  EXPECT_EQ(before.hits, 1);
  EXPECT_EQ(before.misses, 1);
  EXPECT_EQ(before.insertions, 1);
  EXPECT_EQ(before.size, 1);

  // The returned snapshot is the closed window, atomically.
  const MvaCacheStats window = cache.ResetStats();
  EXPECT_EQ(window.hits, before.hits);
  EXPECT_EQ(window.misses, before.misses);
  EXPECT_EQ(window.insertions, before.insertions);
  EXPECT_EQ(window.size, before.size);

  const MvaCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, 0);
  EXPECT_EQ(after.misses, 0);
  EXPECT_EQ(after.insertions, 0);
  EXPECT_EQ(after.evictions, 0);
  EXPECT_EQ(after.size, 1);  // entries stay resident

  // The resident entry still hits — counted in the fresh window, and
  // bit-identical to the pre-reset solution.
  auto warm = cache.SolveThrough(TwoTaskProblem(0.4), {});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->response[0], first->response[0]);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(MvaCacheTest, ConcurrentSolveThroughIsSafeAndConsistent) {
  MvaSolveCache cache;
  const OverlapMvaProblem problem = TwoTaskProblem(0.9);
  auto direct = SolveOverlapMva(problem, {});
  ASSERT_TRUE(direct.ok());

  std::vector<std::thread> threads;
  std::vector<double> responses(8, 0.0);
  for (size_t t = 0; t < responses.size(); ++t) {
    threads.emplace_back([&cache, &problem, &responses, t] {
      for (int i = 0; i < 50; ++i) {
        auto sol = cache.SolveThrough(problem, {});
        ASSERT_TRUE(sol.ok());
        responses[t] = sol->response[0];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (double r : responses) {
    EXPECT_EQ(r, direct->response[0]);
  }
  EXPECT_EQ(cache.stats().lookups(), 8 * 50);
  EXPECT_EQ(cache.stats().size, 1);
}

TEST(MvaCacheTest, ConcurrentEvictionUnderContentionStaysConsistent) {
  // Hammer a tiny cache with a working set 8x its capacity from many
  // threads: every result must still be correct, the size must respect
  // the cap, and the counters must balance (entries resident ==
  // insertions - evictions).
  constexpr int kCap = 4;
  constexpr int kProblems = 32;
  constexpr int kThreads = 8;
  constexpr int kRounds = 30;
  MvaSolveCache cache(/*max_entries=*/kCap);

  std::vector<double> expected(kProblems);
  for (int p = 0; p < kProblems; ++p) {
    auto direct = SolveOverlapMva(TwoTaskProblem(0.01 * (p + 1)), {});
    ASSERT_TRUE(direct.ok());
    expected[p] = direct->response[0];
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &expected, t] {
      // Each thread walks the problems at a different stride so the
      // interleavings collide on insert/evict/lookup.
      for (int i = 0; i < kRounds * kProblems; ++i) {
        const int p = (i * (t + 1) + t) % kProblems;
        auto sol = cache.SolveThrough(TwoTaskProblem(0.01 * (p + 1)), {});
        ASSERT_TRUE(sol.ok());
        ASSERT_EQ(sol->response[0], expected[p]);
      }
    });
  }
  for (auto& th : threads) th.join();

  const MvaCacheStats stats = cache.stats();
  EXPECT_LE(stats.size, kCap);
  EXPECT_EQ(stats.size, stats.insertions - stats.evictions);
  EXPECT_EQ(stats.lookups(), int64_t{kThreads} * kRounds * kProblems);
  EXPECT_GT(stats.evictions, 0);
}

}  // namespace
}  // namespace mrperf
