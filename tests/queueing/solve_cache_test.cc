/// SolveCache interface tests: the factory's shard selection, the
/// sharded implementation's bit-identity to the single-mutex cache
/// (dense and grouped), aggregate counter consistency under concurrent
/// eviction, window folding, and the capacity contract.

#include "queueing/solve_cache.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "queueing/mva_cache.h"
#include "queueing/sharded_solve_cache.h"

namespace mrperf {
namespace {

OverlapMvaProblem TwoTaskProblem(double overlap, double demand = 2.0) {
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 1}};
  p.tasks = {{{demand}}, {{demand}}};
  p.overlap = {{0.0, overlap}, {overlap, 0.0}};
  return p;
}

GroupedOverlapMvaProblem TwoClassGroupedProblem(double theta) {
  GroupedOverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 2},
               {"disk", CenterType::kQueueing, 1}};
  p.groups.push_back({/*demand=*/{4.0, 1.0}, /*count=*/3});
  p.groups.push_back({/*demand=*/{1.0, 3.0}, /*count=*/2});
  p.overlap = {{theta, theta}, {theta, theta}};
  p.task_group = {0, 1, 0, 1, 0};
  return p;
}

TEST(MakeSolveCacheTest, ShardCountSelectsImplementation) {
  EXPECT_EQ(MakeSolveCache(0, 16)->shard_count(), 1);
  EXPECT_EQ(MakeSolveCache(1, 16)->shard_count(), 1);
  EXPECT_EQ(MakeSolveCache(2, 16)->shard_count(), 2);
  // Non-powers of two round up, never down.
  EXPECT_EQ(MakeSolveCache(3, 16)->shard_count(), 4);
  EXPECT_EQ(MakeSolveCache(8, 16)->shard_count(), 8);
  EXPECT_EQ(MakeSolveCache(9, 16)->shard_count(), 16);
}

TEST(MakeSolveCacheTest, MaxEntriesIsTheTotalCap) {
  EXPECT_EQ(MakeSolveCache(1, 64)->max_entries(), 64);
  EXPECT_EQ(MakeSolveCache(8, 64)->max_entries(), 64);
}

TEST(ShardedSolveCacheTest, SolveThroughBitIdenticalToSingleMutex) {
  MvaSolveCache single(/*max_entries=*/64);
  ShardedSolveCache sharded(/*shards=*/8, /*max_entries=*/64);
  for (double theta : {0.0, 0.1, 0.35, 0.5, 0.9, 1.0}) {
    const OverlapMvaProblem problem = TwoTaskProblem(theta);
    auto a = single.SolveThrough(problem, {});
    auto b = sharded.SolveThrough(problem, {});  // miss
    auto c = sharded.SolveThrough(problem, {});  // hit
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    ASSERT_EQ(a->response.size(), b->response.size());
    for (size_t i = 0; i < a->response.size(); ++i) {
      EXPECT_EQ(a->response[i], b->response[i]);
      EXPECT_EQ(a->response[i], c->response[i]);  // hit is exact bytes
    }
  }
  const MvaCacheStats stats = sharded.stats();
  EXPECT_EQ(stats.hits, 6);
  EXPECT_EQ(stats.misses, 6);
  EXPECT_EQ(stats.size, 6);
}

TEST(ShardedSolveCacheTest, GroupedSolveThroughBitIdenticalToSingleMutex) {
  MvaSolveCache single(/*max_entries=*/64);
  ShardedSolveCache sharded(/*shards=*/4, /*max_entries=*/64);
  const GroupedOverlapMvaProblem problem = TwoClassGroupedProblem(0.4);
  auto a = single.SolveThrough(problem, {});
  auto b = sharded.SolveThrough(problem, {});
  auto c = sharded.SolveThrough(problem, {});  // grouped-key hit
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(a->response.size(), problem.task_group.size());
  for (size_t i = 0; i < a->response.size(); ++i) {
    EXPECT_EQ(a->response[i], b->response[i]);
    EXPECT_EQ(a->response[i], c->response[i]);
  }
  EXPECT_EQ(sharded.stats().hits, 1);
}

TEST(ShardedSolveCacheTest, KeysAlwaysMapToTheSameShard) {
  // A key inserted once must hit forever after: shard selection is a
  // pure function of the key bytes.
  ShardedSolveCache cache(/*shards=*/16, /*max_entries=*/1024);
  OverlapMvaSolution sol;
  sol.response = {1.0};
  sol.residence = {{1.0}};
  sol.iterations = 1;
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("key-" + std::to_string(i));
    cache.Insert(keys.back(), sol);
  }
  for (const std::string& key : keys) {
    EXPECT_TRUE(cache.Lookup(key).has_value()) << key;
  }
  EXPECT_EQ(cache.stats().size, 200);
}

TEST(ShardedSolveCacheTest, CapacityIsSplitAcrossShards) {
  // Total cap 32 over 4 shards = 8 per shard: inserting far more keys
  // than the cap must keep the aggregate size at (or below) the total.
  ShardedSolveCache cache(/*shards=*/4, /*max_entries=*/32);
  OverlapMvaSolution sol;
  sol.response = {1.0};
  sol.residence = {{1.0}};
  for (int i = 0; i < 500; ++i) {
    cache.Insert("key-" + std::to_string(i), sol);
  }
  const MvaCacheStats stats = cache.stats();
  EXPECT_LE(stats.size, 32);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(stats.size, stats.insertions - stats.evictions);
}

TEST(ShardedSolveCacheTest, ClearEmptiesEveryShard) {
  ShardedSolveCache cache(/*shards=*/4, /*max_entries=*/64);
  for (double theta : {0.1, 0.2, 0.3}) {
    ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(theta), {}).ok());
  }
  cache.Clear();
  const MvaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 0);
  EXPECT_EQ(stats.lookups(), 0);
  EXPECT_FALSE(
      cache.Lookup(SolveCache::MakeKey(TwoTaskProblem(0.1), {})).has_value());
}

TEST(ShardedSolveCacheTest, ResetStatsFoldsWindowsWithoutLoss) {
  ShardedSolveCache cache(/*shards=*/4, /*max_entries=*/64);
  for (double theta : {0.1, 0.2, 0.3, 0.1, 0.2}) {  // 3 misses, 2 hits
    ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(theta), {}).ok());
  }
  const MvaCacheStats w1 = cache.ResetStats();
  EXPECT_EQ(w1.hits, 2);
  EXPECT_EQ(w1.misses, 3);
  EXPECT_EQ(w1.insertions, 3);
  EXPECT_EQ(w1.size, 3);  // gauge: entries stay resident

  // The next window starts at zero but still hits the resident entries.
  ASSERT_TRUE(cache.SolveThrough(TwoTaskProblem(0.3), {}).ok());
  const MvaCacheStats w2 = cache.stats();
  EXPECT_EQ(w2.hits, 1);
  EXPECT_EQ(w2.misses, 0);
  EXPECT_EQ(w2.size, 3);
}

TEST(ShardedSolveCacheTest, StatsSnapshotsStayConsistentUnderEviction) {
  // Writers churn a cache whose working set is far above its cap while
  // a reader keeps snapshotting stats(): every snapshot must satisfy
  // size == insertions - evictions (per-shard snapshots are taken in
  // one critical section; the sum preserves the identity).
  ShardedSolveCache cache(/*shards=*/4, /*max_entries=*/8);
  OverlapMvaSolution sol;
  sol.response = {1.0};
  sol.residence = {{1.0}};

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!done.load()) {
      const MvaCacheStats s = cache.stats();
      if (s.size != s.insertions - s.evictions) violations.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&cache, &sol, t] {
      for (int i = 0; i < 3000; ++i) {
        const std::string key =
            "churn-" + std::to_string((i * (t + 1)) % 64);
        if (!cache.Lookup(key)) cache.Insert(key, sol);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true);
  reader.join();

  EXPECT_EQ(violations.load(), 0);
  const MvaCacheStats s = cache.stats();
  EXPECT_EQ(s.size, s.insertions - s.evictions);
  EXPECT_GT(s.evictions, 0);
}

TEST(SolveCacheTest, MakeKeyIsSharedAcrossImplementations) {
  // The key is defined by the interface, not the implementation: both
  // caches answer each other's keys.
  const std::string key = SolveCache::MakeKey(TwoTaskProblem(0.5), {});
  EXPECT_EQ(key, MvaSolveCache::MakeKey(TwoTaskProblem(0.5), {}));

  MvaSolveCache single(8);
  ShardedSolveCache sharded(2, 8);
  ASSERT_TRUE(single.SolveThrough(TwoTaskProblem(0.5), {}).ok());
  auto cached = single.Lookup(key);
  ASSERT_TRUE(cached.has_value());
  sharded.Insert(key, *cached);
  auto via_sharded = sharded.Lookup(key);
  ASSERT_TRUE(via_sharded.has_value());
  EXPECT_EQ(via_sharded->response[0], cached->response[0]);
}

}  // namespace
}  // namespace mrperf
