#include "queueing/mva_exact.h"

#include <gtest/gtest.h>

namespace mrperf {
namespace {

ClosedNetwork SingleClassNetwork(int population, double demand,
                                 double think = 0.0) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1}};
  net.demand = {{demand}};
  net.population = {population};
  net.think_time = {think};
  return net;
}

TEST(MvaExactTest, SingleCustomerSeesNoQueueing) {
  auto sol = SolveMvaExact(SingleClassNetwork(1, 2.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 2.0, 1e-12);
  EXPECT_NEAR(sol->throughput[0], 0.5, 1e-12);
  EXPECT_NEAR(sol->utilization[0], 1.0, 1e-12);
}

TEST(MvaExactTest, KnownTwoCustomerSolution) {
  // Classic single-center closed network: with N=2 and D=1, R(2) = 2,
  // X = 2/2 = 1, Q = 2.
  auto sol = SolveMvaExact(SingleClassNetwork(2, 1.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], 2.0, 1e-12);
  EXPECT_NEAR(sol->throughput[0], 1.0, 1e-12);
  EXPECT_NEAR(sol->queue_length[0][0], 2.0, 1e-12);
}

TEST(MvaExactTest, ResponseGrowsLinearlyAtSaturatedCenter) {
  // A saturated single center serves N customers in N*D per cycle.
  for (int n : {1, 2, 5, 10}) {
    auto sol = SolveMvaExact(SingleClassNetwork(n, 3.0));
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol->response[0], 3.0 * n, 1e-9) << "n=" << n;
  }
}

TEST(MvaExactTest, ThinkTimeReducesContention) {
  // Interactive system: R = N/X - Z, and with large Z utilization drops.
  auto busy = SolveMvaExact(SingleClassNetwork(4, 1.0, 0.0));
  auto idle = SolveMvaExact(SingleClassNetwork(4, 1.0, 100.0));
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(idle.ok());
  EXPECT_GT(busy->response[0], idle->response[0]);
  EXPECT_LT(idle->utilization[0], 0.1);
}

TEST(MvaExactTest, DelayCenterAddsNoQueueing) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1},
                 {"think", CenterType::kDelay, 1}};
  net.demand = {{1.0, 5.0}};
  net.population = {3};
  net.think_time = {0.0};
  auto sol = SolveMvaExact(net);
  ASSERT_TRUE(sol.ok());
  // The delay center contributes exactly its demand.
  EXPECT_NEAR(sol->residence[0][1], 5.0, 1e-12);
  EXPECT_GT(sol->residence[0][0], 1.0);  // queueing at the cpu
}

TEST(MvaExactTest, TwoClassSymmetry) {
  // Two identical classes must see identical metrics.
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1},
                 {"disk", CenterType::kQueueing, 1}};
  net.demand = {{1.0, 2.0}, {1.0, 2.0}};
  net.population = {2, 2};
  net.think_time = {0.0, 0.0};
  auto sol = SolveMvaExact(net);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->response[0], sol->response[1], 1e-9);
  EXPECT_NEAR(sol->throughput[0], sol->throughput[1], 1e-9);
}

TEST(MvaExactTest, BottleneckDominates) {
  // Asymptotically X -> 1/D_max as N grows.
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1},
                 {"disk", CenterType::kQueueing, 1}};
  net.demand = {{1.0, 4.0}};
  net.population = {30};
  net.think_time = {0.0};
  auto sol = SolveMvaExact(net);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->throughput[0], 0.25, 0.002);
  EXPECT_NEAR(sol->utilization[1], 1.0, 0.01);
}

TEST(MvaExactTest, MultiServerCenterReducesQueueing) {
  ClosedNetwork one = SingleClassNetwork(4, 2.0);
  ClosedNetwork two = SingleClassNetwork(4, 2.0);
  two.centers[0].server_count = 4;
  auto sol1 = SolveMvaExact(one);
  auto sol4 = SolveMvaExact(two);
  ASSERT_TRUE(sol1.ok());
  ASSERT_TRUE(sol4.ok());
  EXPECT_LT(sol4->response[0], sol1->response[0]);
}

TEST(MvaExactTest, ZeroPopulationClassIsInert) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1}};
  net.demand = {{1.0}, {2.0}};
  net.population = {3, 0};
  net.think_time = {0.0, 0.0};
  auto sol = SolveMvaExact(net);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->throughput[1], 0.0);
  EXPECT_NEAR(sol->response[0], 3.0, 1e-9);
}

TEST(MvaExactTest, StateSpaceGuard) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1}};
  net.demand = {{1.0}, {1.0}, {1.0}, {1.0}};
  net.population = {1000, 1000, 1000, 1000};
  net.think_time = {0, 0, 0, 0};
  auto sol = SolveMvaExact(net, /*max_states=*/1000);
  EXPECT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsOutOfRange());
}

TEST(MvaExactTest, RejectsInvalidNetworks) {
  ClosedNetwork net;
  EXPECT_FALSE(SolveMvaExact(net).ok());  // no centers
  net.centers = {{"cpu", CenterType::kQueueing, 1}};
  EXPECT_FALSE(SolveMvaExact(net).ok());  // no classes
  net.demand = {{-1.0}};
  net.population = {1};
  net.think_time = {0.0};
  EXPECT_FALSE(SolveMvaExact(net).ok());  // negative demand
}

TEST(MvaExactTest, LittlesLawHolds) {
  // N = X * (R + Z) for every class.
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 1},
                 {"disk", CenterType::kQueueing, 2}};
  net.demand = {{0.5, 1.5}, {2.0, 0.25}};
  net.population = {3, 2};
  net.think_time = {1.0, 4.0};
  auto sol = SolveMvaExact(net);
  ASSERT_TRUE(sol.ok());
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(net.population[c],
                sol->throughput[c] * (sol->response[c] + net.think_time[c]),
                1e-9)
        << "class " << c;
  }
}

}  // namespace
}  // namespace mrperf
