#include "serve/json.h"

#include <gtest/gtest.h>

#include <string>

namespace mrperf {
namespace {

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_EQ(ParseJson("42")->number_value(), 42.0);
  EXPECT_EQ(ParseJson("-1.5e2")->number_value(), -150.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
  EXPECT_EQ(ParseJson("  0.25  ")->number_value(), 0.25);
}

TEST(JsonParserTest, ParsesNestedStructures) {
  Result<JsonValue> parsed =
      ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_EQ(a->array_items()[0].number_value(), 1.0);
  const JsonValue* b = a->array_items()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_value(), "c");
  EXPECT_TRUE(parsed->Find("d")->Find("e")->is_null());
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\/d\n\t")")->string_value(),
            "a\"b\\c/d\n\t");
  EXPECT_EQ(ParseJson(R"("\u0041")")->string_value(), "A");
  // 2- and 3-byte UTF-8, and a surrogate pair (U+1F600).
  EXPECT_EQ(ParseJson(R"("\u00e9")")->string_value(), "\xc3\xa9");
  EXPECT_EQ(ParseJson(R"("\u20ac")")->string_value(), "\xe2\x82\xac");
  EXPECT_EQ(ParseJson(R"("\ud83d\ude00")")->string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, DuplicateKeysLastWins) {
  Result<JsonValue> parsed = ParseJson(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("k")->number_value(), 2.0);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",         "}",        "{\"a\":}", "[1,]",
      "{\"a\" 1}",  "nul",       "tru",      "01",       "1.",
      ".5",         "1e",        "+1",       "\"unterminated",
      "\"\\x\"",    "\"\\u12\"", "{}extra",  "[1 2]",    "{'a': 1}",
      "\"\\ud800\"" /* unpaired surrogate */,
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "input: " << text;
  }
}

TEST(JsonParserTest, RejectsUnescapedControlCharacters) {
  EXPECT_FALSE(ParseJson("\"a\nb\"").ok());
  EXPECT_FALSE(ParseJson("\"a\tb\"").ok());
}

TEST(JsonParserTest, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
  // A flat request-sized object is far below the bound.
  EXPECT_TRUE(ParseJson(R"({"a": [[[[1]]]]})").ok());
}

TEST(JsonParserTest, ErrorsNameTheOffset) {
  Result<JsonValue> parsed = ParseJson("{\"a\": @}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos);
}

TEST(AppendJsonStringTest, EscapesSpecialCharacters) {
  std::string out;
  AppendJsonString(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
  // Round-trip through the parser.
  EXPECT_EQ(ParseJson(out)->string_value(), "a\"b\\c\nd\x01");
}

}  // namespace
}  // namespace mrperf
