#include "serve/stats.h"

#include <gtest/gtest.h>

#include <random>

#include "serve/json.h"
#include "serve/request.h"

namespace mrperf {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.PercentileMs(50), 0.0);
  EXPECT_EQ(histogram.PercentileMs(99), 0.0);
}

TEST(LatencyHistogramTest, TracksExactMomentsAndRange) {
  LatencyHistogram histogram;
  for (double ms : {1.0, 3.0, 5.0, 7.0}) histogram.Add(ms);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.mean_ms(), 4.0);
  EXPECT_EQ(histogram.min_ms(), 1.0);
  EXPECT_EQ(histogram.max_ms(), 7.0);
}

TEST(LatencyHistogramTest, PercentilesAreBucketBoundedEstimates) {
  LatencyHistogram histogram;
  // 90 fast samples (~3 ms bucket (2,5]) and 10 slow (~80 ms (50,100]).
  for (int i = 0; i < 90; ++i) histogram.Add(3.0);
  for (int i = 0; i < 10; ++i) histogram.Add(80.0);
  const double p50 = histogram.PercentileMs(50);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 5.0);
  const double p95 = histogram.PercentileMs(95);
  EXPECT_GE(p95, 50.0);
  EXPECT_LE(p95, 100.0);
  // Monotone in p, clamped to the observed range.
  EXPECT_LE(histogram.PercentileMs(50), histogram.PercentileMs(95));
  EXPECT_LE(histogram.PercentileMs(95), histogram.PercentileMs(99));
  EXPECT_LE(histogram.PercentileMs(100), histogram.max_ms());
  EXPECT_GE(histogram.PercentileMs(0), histogram.min_ms());
}

TEST(LatencyHistogramTest, UnboundedTopBucketFallsBackToMax) {
  LatencyHistogram histogram;
  histogram.Add(50000.0);  // beyond the last bound
  histogram.Add(90000.0);
  EXPECT_EQ(histogram.PercentileMs(99), 90000.0);
}

TEST(LatencyHistogramTest, MergeIsExactAcrossFixedBuckets) {
  LatencyHistogram bulk;
  LatencyHistogram interactive;
  LatencyHistogram reference;
  for (double ms : {3.0, 80.0, 700.0}) {
    bulk.Add(ms);
    reference.Add(ms);
  }
  for (double ms : {1.5, 4.0}) {
    interactive.Add(ms);
    reference.Add(ms);
  }
  LatencyHistogram merged;
  merged.Merge(bulk);
  merged.Merge(interactive);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.mean_ms(), reference.mean_ms());
  EXPECT_DOUBLE_EQ(merged.sum_ms(), reference.sum_ms());
  EXPECT_EQ(merged.min_ms(), reference.min_ms());
  EXPECT_EQ(merged.max_ms(), reference.max_ms());
  EXPECT_EQ(merged.bucket_counts(), reference.bucket_counts());
  EXPECT_DOUBLE_EQ(merged.PercentileMs(99), reference.PercentileMs(99));
}

TEST(LatencyHistogramTest, PercentileOrderHoldsForArbitrarySamples) {
  // Property test (satellite): p50 <= p95 <= p99 must hold for any
  // sample distribution — log-uniform, point-mass, heavy-tailed — and
  // every percentile stays within [min, max].
  std::mt19937 rng(20260809u);
  std::uniform_real_distribution<double> log_ms(-1.0, 4.5);
  std::uniform_int_distribution<int> size(1, 400);
  for (int trial = 0; trial < 200; ++trial) {
    LatencyHistogram histogram;
    const int n = size(rng);
    for (int i = 0; i < n; ++i) {
      double ms = std::pow(10.0, log_ms(rng));
      if (trial % 3 == 1) ms = 3.0;           // point mass
      if (trial % 3 == 2 && i % 7 == 0) ms *= 100.0;  // heavy tail
      histogram.Add(ms);
    }
    const double p50 = histogram.PercentileMs(50);
    const double p95 = histogram.PercentileMs(95);
    const double p99 = histogram.PercentileMs(99);
    ASSERT_LE(p50, p95) << "trial " << trial << " n=" << n;
    ASSERT_LE(p95, p99) << "trial " << trial << " n=" << n;
    ASSERT_GE(p50, histogram.min_ms()) << "trial " << trial;
    ASSERT_LE(p99, histogram.max_ms()) << "trial " << trial;
    const LatencyStatsSnapshot snapshot = histogram.Snapshot();
    ASSERT_LE(snapshot.p50_ms, snapshot.p95_ms) << "trial " << trial;
    ASSERT_LE(snapshot.p95_ms, snapshot.p99_ms) << "trial " << trial;
    int64_t total = 0;
    for (int64_t b : snapshot.buckets) total += b;
    ASSERT_EQ(total, static_cast<int64_t>(snapshot.count));
  }
}

TEST(FormatServeStatsJsonTest, RendersParseableSnapshot) {
  ServeStatsSnapshot snapshot;
  snapshot.queue_depth = 3;
  snapshot.draining = true;
  snapshot.requests_total = 10;
  snapshot.evaluations_total = 6;
  snapshot.coalesced_total = 4;
  snapshot.rejected_overload_total = 1;
  snapshot.request_errors_total = 2;
  snapshot.responses_total = 13;
  snapshot.threads = 4;
  snapshot.latency_count = 10;
  snapshot.latency_mean_ms = 12.5;
  snapshot.latency_p99_ms = 80.0;
  snapshot.cache.hits = 7;
  snapshot.cache.misses = 3;
  snapshot.cache.size = 5;
  snapshot.cache_window.hits = 2;
  snapshot.cache_window.misses = 2;

  const std::string json = FormatServeStatsJson(snapshot);
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed->Find("queue_depth")->number_value(), 3.0);
  EXPECT_TRUE(parsed->Find("draining")->bool_value());
  EXPECT_EQ(parsed->Find("requests_total")->number_value(), 10.0);
  EXPECT_EQ(parsed->Find("coalesced_total")->number_value(), 4.0);
  EXPECT_EQ(parsed->Find("threads")->number_value(), 4.0);
  const JsonValue* latency = parsed->Find("latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("count")->number_value(), 10.0);
  EXPECT_EQ(latency->Find("mean")->number_value(), 12.5);
  EXPECT_EQ(latency->Find("p99")->number_value(), 80.0);
  const JsonValue* cache = parsed->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("hits")->number_value(), 7.0);
  EXPECT_EQ(cache->Find("hit_rate")->number_value(), 0.7);
  const JsonValue* window = parsed->Find("cache_window");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->Find("hit_rate")->number_value(), 0.5);
}

TEST(FormatServeStatsJsonTest, ReportsProtocolVersionAndCacheLifecycle) {
  ServeStatsSnapshot snapshot;
  snapshot.cache_shards = 8;
  snapshot.cache.hits = 6;
  snapshot.cache.misses = 2;
  snapshot.cache.size = 4;
  snapshot.cache.checkpoints = 2;
  snapshot.cache.checkpoint_entries = 9;
  snapshot.cache.recoveries = 1;
  snapshot.cache.recovered_entries = 7;
  snapshot.cache.solves = 11;
  snapshot.cache.solve_iterations = 341;

  const std::string json = FormatServeStatsJson(snapshot);
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed->Find("protocol_version")->number_value(),
            static_cast<double>(kServeProtocolVersion));

  const JsonValue* cache = parsed->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("shards")->number_value(), 8.0);
  EXPECT_EQ(cache->Find("checkpoints")->number_value(), 2.0);
  EXPECT_EQ(cache->Find("checkpoint_entries")->number_value(), 9.0);
  EXPECT_EQ(cache->Find("recoveries")->number_value(), 1.0);
  EXPECT_EQ(cache->Find("recovered_entries")->number_value(), 7.0);
  // Executed-solver-effort gauges: cumulative fixed-point solves run on
  // misses (and warm bypass solves) plus their damped-sweep total.
  EXPECT_EQ(cache->Find("solves")->number_value(), 11.0);
  EXPECT_EQ(cache->Find("solve_iterations")->number_value(), 341.0);
  EXPECT_EQ(cache->Find("hit_rate")->number_value(), 0.75);

  // The window sub-object reports only window counters: shard count and
  // lifecycle gauges live on the cumulative object.
  const JsonValue* window = parsed->Find("cache_window");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->Find("shards"), nullptr);
  EXPECT_EQ(window->Find("recoveries"), nullptr);
}

TEST(FormatServeStatsJsonTest, ReportsQosAndTransportCounters) {
  ServeStatsSnapshot snapshot;
  snapshot.rejected_quota_total = 4;
  snapshot.deadline_exceeded_total = 2;
  snapshot.event_loop_threads = 3;
  snapshot.event_loop_pending_tasks = 7;
  snapshot.connections_current = 11;
  snapshot.connections_total = 29;
  snapshot.metrics_requests_total = 5;
  auto& bulk =
      snapshot.latency_by_priority[static_cast<int>(RequestPriority::kBulk)];
  bulk.count = 9;
  bulk.mean_ms = 40.0;
  bulk.p99_ms = 200.0;
  auto& interactive = snapshot.latency_by_priority[static_cast<int>(
      RequestPriority::kInteractive)];
  interactive.count = 3;
  interactive.mean_ms = 5.0;
  interactive.p99_ms = 12.0;

  const std::string json = FormatServeStatsJson(snapshot);
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed->Find("rejected_quota_total")->number_value(), 4.0);
  EXPECT_EQ(parsed->Find("deadline_exceeded_total")->number_value(), 2.0);
  EXPECT_EQ(parsed->Find("event_loop_threads")->number_value(), 3.0);
  EXPECT_EQ(parsed->Find("event_loop_pending_tasks")->number_value(), 7.0);
  EXPECT_EQ(parsed->Find("connections")->number_value(), 11.0);
  EXPECT_EQ(parsed->Find("connections_total")->number_value(), 29.0);
  EXPECT_EQ(parsed->Find("metrics_requests_total")->number_value(), 5.0);

  const JsonValue* by_priority = parsed->Find("latency_by_priority");
  ASSERT_NE(by_priority, nullptr);
  const JsonValue* bulk_json = by_priority->Find("bulk");
  ASSERT_NE(bulk_json, nullptr);
  EXPECT_EQ(bulk_json->Find("count")->number_value(), 9.0);
  EXPECT_EQ(bulk_json->Find("p99")->number_value(), 200.0);
  const JsonValue* interactive_json = by_priority->Find("interactive");
  ASSERT_NE(interactive_json, nullptr);
  EXPECT_EQ(interactive_json->Find("count")->number_value(), 3.0);
  EXPECT_EQ(interactive_json->Find("mean")->number_value(), 5.0);
}

}  // namespace
}  // namespace mrperf
