#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"

namespace mrperf {
namespace {

/// Blocks the dispatcher inside dispatch_hook until opened, so tests
/// can deterministically pile requests up behind an in-flight batch.
class DispatchGate {
 public:
  void OnDispatch() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  /// Waits until the dispatcher has entered the hook `n` times.
  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n] { return entered_ >= n; });
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int entered_ = 0;
};

PredictServiceOptions FastServiceOptions() {
  PredictServiceOptions options;
  options.num_threads = 2;
  return options;
}

/// A small, fast, distinct request line (~tens of ms to evaluate).
std::string RequestLine(const std::string& id, int nodes, int jobs = 1) {
  return "{\"id\":\"" + id + "\",\"nodes\":" + std::to_string(nodes) +
         ",\"input_gb\":0.25,\"jobs\":" + std::to_string(jobs) +
         ",\"repetitions\":1}";
}

TEST(PredictServiceTest, ServedResponseIsByteIdenticalToOffline) {
  PredictService service(FastServiceOptions());
  const std::string line = RequestLine("r1", 2);
  const std::string served = service.Submit(line).get();

  // Offline oracle: same request through a plain SweepRunner.
  Result<ServeRequest> parsed = ParseServeRequest(line);
  ASSERT_TRUE(parsed.ok());
  SweepOptions sweep;
  sweep.experiment = DefaultExperimentOptions();
  SweepRunner runner(sweep);
  const SweepReport report = runner.RunTasks(
      {TaskForRequest(parsed->predict, sweep.experiment)});
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(served, MakePredictResponse(parsed->id, *report.results[0]));
}

TEST(PredictServiceTest, CoalescesDuplicatesOntoInFlightEvaluation) {
  auto gate = std::make_shared<DispatchGate>();
  PredictServiceOptions options = FastServiceOptions();
  options.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictService service(options);

  std::future<std::string> first = service.Submit(RequestLine("dup-a", 2));
  gate->WaitEntered(1);  // evaluation of dup-a is now in flight
  // Same point, different id and textual form: must attach, not requeue.
  std::future<std::string> second = service.Submit(
      R"({"repetitions":1, "input_gb":0.25, "nodes":2, "id":"dup-b"})");
  gate->Open();

  const std::string a = first.get();
  const std::string b = second.get();
  EXPECT_NE(a.find("\"id\": \"dup-a\""), std::string::npos) << a;
  EXPECT_NE(b.find("\"id\": \"dup-b\""), std::string::npos) << b;
  // Identical result bytes: one evaluation answered both.
  EXPECT_EQ(a.substr(a.find("\"result\"")), b.substr(b.find("\"result\"")));

  const ServeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests_total, 2);
  EXPECT_EQ(stats.evaluations_total, 1);
  EXPECT_EQ(stats.coalesced_total, 1);
  EXPECT_EQ(stats.responses_total, 2);
}

TEST(PredictServiceTest, RejectsOverloadedWithStructuredError) {
  auto gate = std::make_shared<DispatchGate>();
  PredictServiceOptions options = FastServiceOptions();
  options.max_queue = 1;
  options.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictService service(options);

  std::future<std::string> a = service.Submit(RequestLine("a", 2));
  gate->WaitEntered(1);  // a is in flight; the queue is empty again
  std::future<std::string> b = service.Submit(RequestLine("b", 3));
  std::future<std::string> c = service.Submit(RequestLine("c", 4));
  const std::string rejected = c.get();  // immediate, queue was full
  EXPECT_NE(rejected.find("\"code\": \"overloaded\""), std::string::npos)
      << rejected;
  gate->Open();
  EXPECT_NE(a.get().find("\"ok\": true"), std::string::npos);
  EXPECT_NE(b.get().find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(service.Stats().rejected_overload_total, 1);
}

TEST(PredictServiceTest, DrainAnswersAdmittedThenRejectsNewRequests) {
  PredictService service(FastServiceOptions());
  std::vector<std::future<std::string>> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(service.Submit(RequestLine("q" + std::to_string(i),
                                                  2 + i)));
  }
  service.Drain();
  for (auto& f : admitted) {
    EXPECT_NE(f.get().find("\"ok\": true"), std::string::npos);
  }
  const std::string late = service.Submit(RequestLine("late", 2)).get();
  EXPECT_NE(late.find("\"code\": \"shutting_down\""), std::string::npos)
      << late;
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(service.Stats().rejected_shutdown_total, 1);
}

TEST(PredictServiceTest, PoolShutdownConvertsToShuttingDownResponses) {
  // The ThreadPool::Submit-after-Shutdown path at the server's call
  // site: evaluations queued after the worker pool died must resolve as
  // clean shutting_down rejections, not lost futures or crashes.
  PredictService service(FastServiceOptions());
  service.ShutdownWorkerPool();
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.Submit(RequestLine("p" + std::to_string(i),
                                                 2 + i)));
  }
  for (auto& f : futures) {
    const std::string response = f.get();
    EXPECT_NE(response.find("\"code\": \"shutting_down\""),
              std::string::npos)
        << response;
  }
  EXPECT_EQ(service.Stats().rejected_shutdown_total, 3);
  EXPECT_EQ(service.Stats().evaluations_total, 0);
}

TEST(PredictServiceTest, MalformedAndInvalidLinesGetImmediateErrors) {
  PredictService service(FastServiceOptions());
  const std::string parse_error = service.Submit("{{{{").get();
  EXPECT_NE(parse_error.find("\"code\": \"parse_error\""),
            std::string::npos);
  const std::string invalid =
      service.Submit(R"({"profile":"nope"})").get();
  EXPECT_NE(invalid.find("\"code\": \"invalid_argument\""),
            std::string::npos);
  EXPECT_EQ(service.Stats().request_errors_total, 2);
}

TEST(PredictServiceTest, ModelOnlyRequestsServeNullMeasurement) {
  PredictService service(FastServiceOptions());
  const std::string response =
      service.Submit(R"({"nodes":2,"input_gb":0.25,"model_only":true})")
          .get();
  Result<JsonValue> parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  const JsonValue* result = parsed->Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->Find("measured_sec")->is_null());
  EXPECT_TRUE(result->Find("forkjoin_error")->is_null());
  EXPECT_GT(result->Find("forkjoin_sec")->number_value(), 0.0);
}

TEST(PredictServiceTest, StatsRequestReportsAndResetsCacheWindow) {
  PredictService service(FastServiceOptions());
  // Two rounds of the same request: round two hits the MVA cache.
  service.Submit(RequestLine("w1", 2)).get();
  service.Submit(RequestLine("w2", 2)).get();

  const ServeStatsSnapshot before = service.Stats();
  EXPECT_EQ(before.requests_total, 2);
  EXPECT_EQ(before.evaluations_total, 2);
  EXPECT_GT(before.cache.hits, 0);
  EXPECT_EQ(before.cache_window.hits, before.cache.hits);
  EXPECT_EQ(before.latency_count, 2u);
  EXPECT_GE(before.latency_p95_ms, before.latency_p50_ms);

  // Closing the window moves counters into the cumulative total.
  const ServeStatsSnapshot closing = service.Stats(/*reset_window=*/true);
  EXPECT_EQ(closing.cache.hits, before.cache.hits);
  const ServeStatsSnapshot after = service.Stats();
  EXPECT_EQ(after.cache_window.hits, 0);
  EXPECT_EQ(after.cache_window.lookups(), 0);
  EXPECT_EQ(after.cache.hits, before.cache.hits);  // cumulative survives
  EXPECT_EQ(after.cache.size, before.cache.size);  // entries untouched

  // The stats request kind end-to-end, with reset_window.
  const std::string response =
      service.Submit(R"({"kind":"stats","id":"s","reset_window":true})")
          .get();
  Result<JsonValue> parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed->Find("id")->string_value(), "s");
  const JsonValue* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find("requests_total")->number_value(), 2.0);
  ASSERT_NE(stats->Find("latency_ms"), nullptr);
  EXPECT_EQ(stats->Find("latency_ms")->Find("count")->number_value(), 2.0);
  ASSERT_NE(stats->Find("cache"), nullptr);
  EXPECT_EQ(stats->Find("cache")->Find("hits")->number_value(),
            static_cast<double>(before.cache.hits));
}

TEST(PredictServiceTest, CheckpointOnDrainWarmsTheNextBoot) {
  const std::string path = testing::TempDir() + "/service_cache.ckpt";
  std::remove(path.c_str());

  // First life: evaluate, then drain — the drain writes the checkpoint.
  std::string first_response;
  {
    PredictServiceOptions options = FastServiceOptions();
    options.cache_shards = 4;
    options.cache_file = path;
    PredictService service(options);
    EXPECT_EQ(service.Stats().cache.recoveries, 0);  // no file yet: cold
    first_response = service.Submit(RequestLine("warm", 2)).get();
    service.Drain();
  }

  // Second life: the boot recovery must be visible in stats, and the
  // replayed request must hit the cache and answer byte-identically.
  {
    PredictServiceOptions options = FastServiceOptions();
    options.cache_shards = 4;
    options.cache_file = path;
    PredictService service(options);
    const ServeStatsSnapshot boot = service.Stats();
    EXPECT_EQ(boot.cache_shards, 4);
    EXPECT_EQ(boot.cache.recoveries, 1);
    EXPECT_GT(boot.cache.recovered_entries, 0);
    EXPECT_GT(boot.cache.size, 0);

    const std::string replay = service.Submit(RequestLine("warm", 2)).get();
    EXPECT_EQ(replay, first_response);
    EXPECT_GT(service.Stats().cache.hits, 0);
  }
  std::remove(path.c_str());
}

TEST(PredictServiceTest, CorruptCacheFileStartsColdWithoutCrashing) {
  const std::string path = testing::TempDir() + "/corrupt_cache.ckpt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("MRSC but definitely not a checkpoint", f);
    std::fclose(f);
  }
  PredictServiceOptions options = FastServiceOptions();
  options.cache_file = path;
  PredictService service(options);
  const ServeStatsSnapshot boot = service.Stats();
  EXPECT_EQ(boot.cache.recoveries, 0);
  EXPECT_EQ(boot.cache.size, 0);
  // The service still serves.
  const std::string response = service.Submit(RequestLine("ok", 2)).get();
  EXPECT_NE(response.find("\"ok\": true"), std::string::npos);
  std::remove(path.c_str());
}

// ---- QoS: priority, deadlines, quotas (PR9) ----------------------------

/// Collects SubmitLine responses in completion order.
class ResponseLog {
 public:
  PredictService::ResponseCallback Tag(const std::string& tag) {
    return [this, tag](std::string response) {
      std::lock_guard<std::mutex> lock(mu_);
      order_.push_back(tag);
      responses_[tag] = std::move(response);
      cv_.notify_all();
    };
  }

  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n] { return order_.size() >= n; });
  }

  std::vector<std::string> order() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

  std::string response(const std::string& tag) {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_[tag];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> responses_;
};

size_t IndexOf(const std::vector<std::string>& order,
               const std::string& tag) {
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == tag) return i;
  }
  return order.size();
}

TEST(PredictServiceTest, InteractiveRequestsDispatchAheadOfBulk) {
  auto gate = std::make_shared<DispatchGate>();
  PredictServiceOptions options = FastServiceOptions();
  options.max_batch = 1;  // one evaluation per batch: order observable
  options.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictService service(options);
  ResponseLog log;

  service.SubmitLine(RequestLine("hold", 2), "", log.Tag("hold"));
  gate->WaitEntered(1);  // dispatcher blocked with "hold" in flight
  // Two bulk requests queue first, then an interactive one: it must
  // still dispatch ahead of both.
  service.SubmitLine(RequestLine("bulk-1", 3), "", log.Tag("bulk-1"));
  service.SubmitLine(RequestLine("bulk-2", 4), "", log.Tag("bulk-2"));
  service.SubmitLine(
      R"({"id":"fast","nodes":5,"input_gb":0.25,"repetitions":1,)"
      R"("priority":"interactive"})",
      "", log.Tag("fast"));
  gate->Open();
  log.WaitFor(4);

  const std::vector<std::string> order = log.order();
  EXPECT_LT(IndexOf(order, "fast"), IndexOf(order, "bulk-1")) << order[1];
  EXPECT_LT(IndexOf(order, "fast"), IndexOf(order, "bulk-2"));
  EXPECT_NE(log.response("fast").find("\"ok\": true"), std::string::npos);
}

TEST(PredictServiceTest, InteractiveDuplicateUpgradesQueuedBulkEvaluation) {
  auto gate = std::make_shared<DispatchGate>();
  PredictServiceOptions options = FastServiceOptions();
  options.max_batch = 1;
  options.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictService service(options);
  ResponseLog log;

  service.SubmitLine(RequestLine("hold", 2), "", log.Tag("hold"));
  gate->WaitEntered(1);
  service.SubmitLine(RequestLine("bulk-other", 3), "", log.Tag("bulk-other"));
  service.SubmitLine(RequestLine("shared", 4), "", log.Tag("shared-bulk"));
  // Interactive duplicate of "shared": coalesces onto the queued bulk
  // evaluation AND pulls it into the interactive queue, ahead of
  // "bulk-other" which was queued earlier.
  service.SubmitLine(
      R"({"id":"shared-int","nodes":4,"input_gb":0.25,"repetitions":1,)"
      R"("priority":"interactive"})",
      "", log.Tag("shared-int"));
  gate->Open();
  log.WaitFor(4);

  const std::vector<std::string> order = log.order();
  EXPECT_LT(IndexOf(order, "shared-bulk"), IndexOf(order, "bulk-other"));
  EXPECT_LT(IndexOf(order, "shared-int"), IndexOf(order, "bulk-other"));
  // Coalesced: one evaluation answered both, byte-identically.
  const std::string a = log.response("shared-bulk");
  const std::string b = log.response("shared-int");
  EXPECT_EQ(a.substr(a.find("\"result\"")), b.substr(b.find("\"result\"")));
  const ServeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.coalesced_total, 1);
  EXPECT_EQ(stats.evaluations_total, 3);  // hold, shared, bulk-other
}

TEST(PredictServiceTest, ExpiredDeadlinesAnswerAtDequeueNotSilently) {
  auto gate = std::make_shared<DispatchGate>();
  PredictServiceOptions options = FastServiceOptions();
  options.max_batch = 1;
  options.dispatch_hook = [gate](size_t) { gate->OnDispatch(); };
  PredictService service(options);
  ResponseLog log;

  service.SubmitLine(RequestLine("hold", 2), "", log.Tag("hold"));
  gate->WaitEntered(1);
  // A 1 ms deadline queued behind a blocked dispatcher is long expired
  // by dequeue time.
  service.SubmitLine(
      R"({"id":"late","nodes":3,"input_gb":0.25,"repetitions":1,)"
      R"("deadline_ms":1})",
      "", log.Tag("late"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate->Open();
  log.WaitFor(2);

  const std::string late = log.response("late");
  EXPECT_NE(late.find("\"code\": \"deadline_exceeded\""), std::string::npos)
      << late;
  EXPECT_NE(late.find("\"id\": \"late\""), std::string::npos) << late;
  const ServeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.deadline_exceeded_total, 1);
  // The all-expired evaluation was skipped, never evaluated...
  EXPECT_EQ(stats.evaluations_total, 1);  // just "hold"
  // ...and never silently dropped: every request has a response.
  EXPECT_EQ(stats.responses_total, 2);
  // Expirations must not contaminate the served latency percentiles.
  EXPECT_EQ(stats.latency_count, 1u);
}

TEST(PredictServiceTest, GenerousDeadlineStillEvaluates) {
  PredictService service(FastServiceOptions());
  const std::string response =
      service
          .Submit(
              R"({"id":"ok","nodes":2,"input_gb":0.25,"repetitions":1,)"
              R"("deadline_ms":86400000})")
          .get();
  EXPECT_NE(response.find("\"ok\": true"), std::string::npos) << response;
  EXPECT_EQ(service.Stats().deadline_exceeded_total, 0);
}

TEST(PredictServiceTest, PerClientQuotaRejectsBurstsPerPeer) {
  PredictServiceOptions options = FastServiceOptions();
  options.quota_rps = 1;  // 1 token: the second burst request is over
  PredictService service(options);
  ResponseLog log;

  service.SubmitLine(RequestLine("a1", 2), "10.0.0.1:9", log.Tag("a1"));
  service.SubmitLine(RequestLine("a2", 3), "10.0.0.1:9", log.Tag("a2"));
  service.SubmitLine(RequestLine("a3", 4), "10.0.0.1:9", log.Tag("a3"));
  // A different peer holds its own bucket.
  service.SubmitLine(RequestLine("b1", 5), "10.0.0.2:9", log.Tag("b1"));
  log.WaitFor(4);

  EXPECT_NE(log.response("a1").find("\"ok\": true"), std::string::npos);
  for (const char* tag : {"a2", "a3"}) {
    const std::string response = log.response(tag);
    EXPECT_NE(response.find("\"code\": \"quota_exceeded\""),
              std::string::npos)
        << tag << ": " << response;
    EXPECT_NE(response.find("retry"), std::string::npos);
  }
  EXPECT_NE(log.response("b1").find("\"ok\": true"), std::string::npos);

  // Stats requests are quota-exempt: observability stays reachable for
  // a throttled client.
  const std::string stats_response =
      service.Submit(R"({"kind":"stats"})").get();
  EXPECT_NE(stats_response.find("\"stats\""), std::string::npos);
  EXPECT_EQ(service.Stats().rejected_quota_total, 2);
}

TEST(PredictServiceTest, BatchedRequestsAllComplete) {
  // More distinct requests than max_batch: several micro-batches.
  PredictServiceOptions options = FastServiceOptions();
  options.max_batch = 2;
  PredictService service(options);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        service.Submit(RequestLine("b" + std::to_string(i), 2, 1 + i % 3)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const std::string response = futures[i].get();
    EXPECT_NE(response.find("\"ok\": true"), std::string::npos)
        << "request " << i << ": " << response;
  }
  EXPECT_EQ(service.Stats().responses_total, 6);
}

}  // namespace
}  // namespace mrperf
