/// PredictClient failure-semantics tests: refused connections and
/// expired read timeouts must surface as `Unavailable` — the retryable
/// category ConnectWithRetry and the fleet router's membership prober
/// key on — while a drained server's clean EOF stays NotFound.

#include "serve/client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve/server.h"

namespace mrperf {
namespace {

PredictServerOptions FastServerOptions() {
  PredictServerOptions options;
  options.port = 0;
  options.service.num_threads = 2;
  return options;
}

/// A loopback port with nothing listening: bind ephemeral, release.
int DeadPort() {
  PredictServer ephemeral(FastServerOptions());
  EXPECT_TRUE(ephemeral.Start().ok());
  const int port = ephemeral.port();
  ephemeral.DrainAndStop();
  return port;
}

TEST(PredictClientTest, RefusedConnectionIsUnavailable) {
  PredictClient client;
  const Status status = client.Connect("127.0.0.1", DeadPort());
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_FALSE(client.connected());
}

TEST(PredictClientTest, ConnectWithRetryGivesUpAfterMaxAttempts) {
  const int port = DeadPort();
  PredictClient client;
  RetryBackoff backoff;
  backoff.max_attempts = 3;
  backoff.initial_backoff_ms = 1;
  backoff.max_backoff_ms = 2;
  const auto start = std::chrono::steady_clock::now();
  const Status status = client.ConnectWithRetry("127.0.0.1", port, backoff);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  // Three refused attempts with millisecond backoffs finish fast; a
  // runaway retry loop would blow well past this bound.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

TEST(PredictClientTest, ConnectWithRetrySurvivesALateServer) {
  // The server comes up only after the first attempt has been refused
  // — the exact "replica not bound yet" startup race the backoff is
  // for.
  const int port = DeadPort();
  std::thread late_server([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    PredictServerOptions options = FastServerOptions();
    options.port = port;
    PredictServer server(options);
    ASSERT_TRUE(server.Start().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    server.DrainAndStop();
  });
  PredictClient client;
  RetryBackoff backoff;
  backoff.max_attempts = 10;
  backoff.initial_backoff_ms = 20;
  backoff.max_backoff_ms = 100;
  const Status status = client.ConnectWithRetry("127.0.0.1", port, backoff);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(client.connected());
  client.Close();
  late_server.join();
}

TEST(PredictClientTest, ReadTimeoutExpiresAsUnavailable) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());

  PredictClientOptions options;
  options.connect_timeout_ms = 1000;
  options.read_timeout_ms = 50;
  PredictClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // No request sent, so no response ever comes: the read deadline is
  // the only way out.
  Result<std::string> response = client.ReadLine();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnavailable())
      << response.status().ToString();

  // The timeout is a deadline, not a corruption: the same connection
  // still completes a real round trip afterwards. A loaded machine can
  // stretch the evaluation past the 50ms window, so keep re-arming the
  // read — each expiry is the retryable Unavailable, never an error
  // that poisons the stream.
  ASSERT_TRUE(client.SendLine(R"({"id": "after-timeout", "nodes": 2})").ok());
  Result<std::string> answered = client.ReadLine();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!answered.ok() && answered.status().IsUnavailable() &&
         std::chrono::steady_clock::now() < deadline) {
    answered = client.ReadLine();
  }
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  EXPECT_NE(answered.ValueOrDie().find("\"id\": \"after-timeout\""),
            std::string::npos);
  server.DrainAndStop();
}

TEST(PredictClientTest, DrainedServerEofIsNotFound) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  server.DrainAndStop();
  Result<std::string> response = client.ReadLine();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound)
      << response.status().ToString();
}

}  // namespace
}  // namespace mrperf
