/// Golden-byte pins for CanonicalPredictKey. The key's exact bytes are
/// load-bearing well beyond this process: the service coalesces and
/// caches on them, and the fleet router consistent-hashes them onto
/// the ring — so changing a single byte reshuffles keys across every
/// deployed fleet and cold-starts every warm replica cache. These
/// tests freeze the format; bump the pins only with a deliberate
/// placement-contract change (and say so in the commit).

#include <gtest/gtest.h>

#include <string>

#include "serve/request.h"

namespace mrperf {
namespace {

std::string KeyOf(const std::string& line) {
  Result<ServeRequest> parsed = ParseServeRequest(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return std::string();
  EXPECT_EQ(parsed.ValueOrDie().kind, ServeRequest::Kind::kPredict);
  return CanonicalPredictKey(parsed.ValueOrDie().predict);
}

TEST(CanonicalPredictKeyGoldenTest, DefaultPointPinnedBytes) {
  // The paper-baseline point every omitted field resolves to:
  // 4 nodes, 1 GiB input, 1 job, 128 MiB blocks, 2 reducers,
  // 5 repetitions, seed 1234, capacity scheduler, the service's
  // configured profile (spelled ""), uniform cluster.
  EXPECT_EQ(KeyOf("{}"),
            "n=4|i=1073741824|j=1|b=134217728|r=2|reps=5|seed=1234|"
            "s=capacity|p=|c=uniform");
}

TEST(CanonicalPredictKeyGoldenTest, ExplicitPointPinnedBytes) {
  EXPECT_EQ(
      KeyOf(R"({"kind": "predict", "nodes": 16, "input_gb": 5.0,)"
            R"( "jobs": 4, "block_mb": 256, "reducers": 8,)"
            R"( "repetitions": 3, "seed": 99, "scheduler": "tetris",)"
            R"( "profile": "wordcount",)"
            R"( "cluster": "2x65536MBx12c+2x16384MBx4c"})"),
      "n=16|i=5368709120|j=4|b=268435456|r=8|reps=3|seed=99|"
      "s=tetris|p=wordcount|c=2x65536MBx12c+2x16384MBx4c");
}

TEST(CanonicalPredictKeyGoldenTest, EquivalentSpellingsCanonicalize) {
  // Key order, spelled-out defaults, exact-byte aliases and the
  // "default" profile spelling all collapse onto one key — that
  // collapse is what makes coalescing, caching and ring placement see
  // duplicates as duplicates.
  const std::string key = KeyOf("{}");
  EXPECT_EQ(KeyOf(R"({"seed": 1234, "repetitions": 5, "jobs": 1,)"
                  R"( "nodes": 4, "input_bytes": 1073741824,)"
                  R"( "block_size_bytes": 134217728, "reducers": 2,)"
                  R"( "scheduler": "capacity", "profile": "default",)"
                  R"( "cluster": "uniform"})"),
            key);
  EXPECT_EQ(KeyOf(R"({"input_gb": 1.0})"), key);
  // model_only is wire sugar for repetitions == 0.
  EXPECT_EQ(KeyOf(R"({"model_only": true})"),
            KeyOf(R"({"repetitions": 0})"));
}

TEST(CanonicalPredictKeyGoldenTest, QoSFieldsAreExcluded) {
  // Priority and deadline schedule the evaluation; they do not change
  // its result, its cache entry, or its ring placement.
  const std::string key = KeyOf("{}");
  EXPECT_EQ(KeyOf(R"({"priority": "interactive"})"), key);
  EXPECT_EQ(KeyOf(R"({"deadline_ms": 250})"), key);
  EXPECT_EQ(KeyOf(R"({"priority": "bulk", "deadline_ms": 1})"), key);
}

TEST(CanonicalPredictKeyGoldenTest, DistinctEvaluationsDiverge) {
  const std::string key = KeyOf("{}");
  EXPECT_NE(KeyOf(R"({"nodes": 5})"), key);
  EXPECT_NE(KeyOf(R"({"seed": 1235})"), key);
  EXPECT_NE(KeyOf(R"({"repetitions": 4})"), key);
  EXPECT_NE(KeyOf(R"({"profile": "terasort"})"), key);
}

}  // namespace
}  // namespace mrperf
