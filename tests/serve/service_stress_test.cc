/// TSan-targeted stress tests for PredictService lifecycle races:
/// BeginDrain()/Drain() firing from several threads while clients are
/// still submitting, and the /stats window fold racing the dispatcher.
/// The service's contract under this abuse is exact: every future
/// resolves with exactly one response — an evaluated result for
/// requests admitted before the drain, a structured `shutting_down`
/// rejection after — and nothing deadlocks or leaks a promise.

#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

namespace mrperf {
namespace {

/// Model-only request: no simulator repetitions, a few ms to evaluate,
/// so drain races cover many requests instead of a few slow ones.
std::string ModelOnlyLine(const std::string& id, int nodes) {
  return "{\"id\":\"" + id + "\",\"nodes\":" + std::to_string(nodes) +
         ",\"input_gb\":0.25,\"model_only\":true}";
}

TEST(PredictServiceStressTest, ConcurrentDrainRacesClientSubmits) {
  PredictServiceOptions options;
  options.num_threads = 2;
  options.max_queue = 64;
  PredictService service(options);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 40;
  std::vector<std::vector<std::future<std::string>>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  std::atomic<int> submitted{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&service, &futures, &submitted, t] {
      futures[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        // A mix of distinct keys and cross-thread duplicates, so the
        // drain also races coalescing-map attachment.
        const int nodes = 2 + (i % 8);
        futures[t].push_back(service.Submit(
            ModelOnlyLine("t" + std::to_string(t) + "-" + std::to_string(i),
                          nodes)));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let some traffic through, then drain from several threads at once
  // while the submitters are still going.
  while (submitted.load(std::memory_order_relaxed) < kSubmitters * 4) {
    std::this_thread::yield();
  }
  std::vector<std::thread> drainers;
  drainers.reserve(3);
  drainers.emplace_back([&service] { service.BeginDrain(); });
  for (int i = 0; i < 2; ++i) {
    drainers.emplace_back([&service] { service.Drain(); });
  }
  for (std::thread& s : submitters) s.join();
  for (std::thread& d : drainers) d.join();

  // Exactly one response per submitted request, each either a predict
  // result or a structured rejection — never empty, never hung.
  int evaluated = 0;
  int rejected = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const std::string response = f.get();
      ASSERT_FALSE(response.empty());
      if (response.find("\"error\"") == std::string::npos) {
        ++evaluated;
      } else {
        EXPECT_NE(response.find("shutting_down"), std::string::npos)
            << response;
        ++rejected;
      }
    }
  }
  EXPECT_EQ(evaluated + rejected, kSubmitters * kPerThread);

  const ServeStatsSnapshot stats = service.Stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.rejected_shutdown_total, rejected);
  EXPECT_EQ(stats.requests_total, evaluated);
}

TEST(PredictServiceStressTest, StatsWindowFoldRacesDispatcherAndDrain) {
  PredictServiceOptions options;
  options.num_threads = 2;
  PredictService service(options);

  std::atomic<bool> stop{false};
  // A stats reader folding the cache window as fast as it can, racing
  // the dispatcher's evaluations and the final drain.
  std::thread stats_reader([&service, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServeStatsSnapshot snapshot = service.Stats(/*reset_window=*/true);
      EXPECT_GE(snapshot.responses_total, 0);
      // The folded cumulative counters never go backwards.
      EXPECT_GE(snapshot.cache.hits, snapshot.cache_window.hits);
    }
  });

  std::vector<std::future<std::string>> futures;
  futures.reserve(60);
  for (int i = 0; i < 60; ++i) {
    futures.push_back(service.Submit(
        ModelOnlyLine("w" + std::to_string(i), 2 + (i % 6))));
  }
  for (auto& f : futures) {
    EXPECT_FALSE(f.get().empty());
  }
  service.Drain();
  stop.store(true, std::memory_order_relaxed);
  stats_reader.join();
}

}  // namespace
}  // namespace mrperf
