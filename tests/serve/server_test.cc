#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/request.h"

namespace mrperf {
namespace {

PredictServerOptions FastServerOptions() {
  PredictServerOptions options;
  options.port = 0;  // ephemeral
  options.service.num_threads = 2;
  return options;
}

std::string RequestLine(const std::string& id, int nodes) {
  return "{\"id\":\"" + id + "\",\"nodes\":" + std::to_string(nodes) +
         ",\"input_gb\":0.25,\"repetitions\":1}";
}

TEST(PredictServerTest, ServesPredictAndStatsOverTcp) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<std::string> predict = client.Call(RequestLine("t1", 2));
  ASSERT_TRUE(predict.ok());
  Result<JsonValue> parsed = ParseJson(*predict);
  ASSERT_TRUE(parsed.ok()) << *predict;
  EXPECT_EQ(parsed->Find("id")->string_value(), "t1");
  EXPECT_TRUE(parsed->Find("ok")->bool_value());
  EXPECT_GT(parsed->Find("result")->Find("measured_sec")->number_value(),
            0.0);

  Result<std::string> stats = client.Call(R"({"kind":"stats"})");
  ASSERT_TRUE(stats.ok());
  Result<JsonValue> stats_parsed = ParseJson(*stats);
  ASSERT_TRUE(stats_parsed.ok()) << *stats;
  EXPECT_EQ(stats_parsed->Find("stats")
                ->Find("requests_total")
                ->number_value(),
            1.0);
  server.DrainAndStop();
}

TEST(PredictServerTest, MalformedLinesAnswerWithoutDisconnecting) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Result<std::string> garbage = client.Call("definitely not json");
  ASSERT_TRUE(garbage.ok());
  EXPECT_NE(garbage->find("\"code\": \"parse_error\""), std::string::npos);

  Result<std::string> unknown = client.Call(R"({"profile":"zzz"})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown->find("\"code\": \"invalid_argument\""),
            std::string::npos);

  // The connection survived both errors.
  Result<std::string> fine = client.Call(RequestLine("ok", 2));
  ASSERT_TRUE(fine.ok());
  EXPECT_NE(fine->find("\"ok\": true"), std::string::npos);
  server.DrainAndStop();
}

TEST(PredictServerTest, PipelinedResponsesArriveInRequestOrder) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    // Mixed durations (different points) plus blank keep-alive lines:
    // order must still follow submission order.
    ASSERT_TRUE(client.SendLine("").ok());
    ASSERT_TRUE(
        client.SendLine(RequestLine("seq" + std::to_string(i), 2 + i % 3))
            .ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    Result<std::string> response = client.ReadLine();
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_NE(response->find("\"id\": \"seq" + std::to_string(i) + "\""),
              std::string::npos)
        << *response;
  }
  server.DrainAndStop();
}

TEST(PredictServerTest, DrainAndStopFlushesThenCloses) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client.SendLine(RequestLine("drain" + std::to_string(i), 2 + i))
            .ok());
  }
  // Wait until all three are admitted (sent bytes may not have been
  // read yet), then drain: admitted requests must still be answered.
  for (int spin = 0; server.service().Stats().requests_total < 3; ++spin) {
    ASSERT_LT(spin, 2000) << "requests never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.DrainAndStop();  // idempotent; drains admitted requests

  // Every admitted request was answered before the close...
  for (int i = 0; i < 3; ++i) {
    Result<std::string> response = client.ReadLine();
    ASSERT_TRUE(response.ok()) << "response " << i << " lost in drain";
    EXPECT_NE(response->find("\"ok\": true"), std::string::npos)
        << *response;
  }
  // ...then the connection was closed,
  EXPECT_FALSE(client.ReadLine().ok());
  // and the port no longer accepts connections.
  PredictClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());
  server.DrainAndStop();  // second call is a no-op
}

TEST(PredictServerTest, OversizedLineGetsErrorThenDisconnect) {
  PredictServerOptions options = FastServerOptions();
  options.max_line_bytes = 256;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendLine(std::string(1024, 'x')).ok());
  Result<std::string> response = client.ReadLine();
  ASSERT_TRUE(response.ok());
  // Golden regression (satellite): the error payload is byte-for-byte
  // what the PR5 thread-per-connection transport produced — protocol
  // stability does not depend on the transport implementation.
  EXPECT_EQ(*response,
            MakeErrorResponse(std::nullopt, ServeErrorCode::kParseError,
                              "request line exceeds 256 bytes"));
  EXPECT_FALSE(client.ReadLine().ok());  // connection was terminated
  // The transport-level error is still visible in the service counters.
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.request_errors_total, 1);
  EXPECT_EQ(stats.responses_total, 1);
  server.DrainAndStop();
}

TEST(PredictServerTest, OversizedLineWithoutNewlineAlsoGetsTheGoldenError) {
  // The second framing path: a lineless buffer beyond the cap (the
  // slow-loris flavor of an oversized request).
  PredictServerOptions options = FastServerOptions();
  options.max_line_bytes = 256;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // SendLine appends '\n'; two half-lines first so bytes arrive with no
  // newline until far beyond the cap.
  ASSERT_TRUE(client.SendLine(std::string(600, 'y')).ok());
  Result<std::string> response = client.ReadLine();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response,
            MakeErrorResponse(std::nullopt, ServeErrorCode::kParseError,
                              "request line exceeds 256 bytes"));
  EXPECT_FALSE(client.ReadLine().ok());
  server.DrainAndStop();
}

TEST(PredictServerTest, WireAcceptsBothSpokenVersionsAndQosFields) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Version 1 (PR5 clients) and version 2 answer byte-identically for
  // the same point; the QoS fields ride version 2.
  Result<std::string> v1 = client.Call(
      R"({"version":1,"id":"v","nodes":2,"input_gb":0.25,)"
      R"("repetitions":1})");
  ASSERT_TRUE(v1.ok());
  Result<std::string> v2 = client.Call(
      R"({"version":2,"id":"v","nodes":2,"input_gb":0.25,)"
      R"("repetitions":1,"priority":"interactive","deadline_ms":60000})");
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(v1->find("\"ok\": true"), std::string::npos) << *v1;
  EXPECT_EQ(*v1, *v2);  // scheduling metadata never changes result bytes

  Result<std::string> future_version =
      client.Call(R"({"version":3,"nodes":2})");
  ASSERT_TRUE(future_version.ok());
  EXPECT_NE(future_version->find("\"code\": \"invalid_argument\""),
            std::string::npos)
      << *future_version;
  Result<std::string> bad_priority =
      client.Call(R"({"priority":"ludicrous","nodes":2})");
  ASSERT_TRUE(bad_priority.ok());
  EXPECT_NE(bad_priority->find("\"code\": \"invalid_argument\""),
            std::string::npos)
      << *bad_priority;
  server.DrainAndStop();
}

/// Speaks just enough HTTP to scrape: sends a GET, returns status line,
/// headers and body (the connection closes after one response).
Result<std::pair<std::string, std::string>> HttpGet(int port,
                                                    const std::string& path) {
  PredictClient client;
  MRPERF_RETURN_NOT_OK(client.Connect("127.0.0.1", port));
  MRPERF_RETURN_NOT_OK(client.SendLine("GET " + path + " HTTP/1.1"));
  MRPERF_RETURN_NOT_OK(client.SendLine("Host: localhost"));
  MRPERF_RETURN_NOT_OK(client.SendLine(""));
  std::string head;
  std::string body;
  bool in_body = false;
  for (;;) {
    Result<std::string> line = client.ReadLine();
    if (!line.ok()) break;  // Connection: close ends the response
    std::string text = *line;
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (!in_body && text.empty()) {
      in_body = true;
      continue;
    }
    (in_body ? body : head) += text;
    (in_body ? body : head) += '\n';
  }
  return std::make_pair(head, body);
}

TEST(PredictServerTest, MetricsEndpointServesValidPrometheusText) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());

  // Serve one predict first so the counters are nonzero.
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Call(RequestLine("m1", 2)).ok());

  Result<std::pair<std::string, std::string>> scrape =
      HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  EXPECT_NE(scrape->first.find("HTTP/1.1 200 OK"), std::string::npos)
      << scrape->first;
  EXPECT_NE(scrape->first.find("text/plain; version=0.0.4"),
            std::string::npos)
      << scrape->first;
  const Status valid = ValidatePrometheusText(scrape->second);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << scrape->second;
  EXPECT_NE(scrape->second.find("predictd_requests_total 1"),
            std::string::npos)
      << scrape->second;

  // The scrape itself is counted, and /stats serves the JSON snapshot.
  Result<std::pair<std::string, std::string>> stats =
      HttpGet(server.port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->first.find("application/json"), std::string::npos);
  Result<JsonValue> parsed = ParseJson(stats->second);
  ASSERT_TRUE(parsed.ok()) << stats->second;
  EXPECT_EQ(parsed->Find("metrics_requests_total")->number_value(), 1.0);
  EXPECT_GE(parsed->Find("connections")->number_value(), 1.0);

  Result<std::pair<std::string, std::string>> missing =
      HttpGet(server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing->first.find("404"), std::string::npos);
  server.DrainAndStop();
}

TEST(PredictServerTest, MetricsEndpointCanBeDisabled) {
  PredictServerOptions options = FastServerOptions();
  options.enable_metrics = false;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());
  // The GET line is treated as a (malformed) JSON request line, not
  // HTTP — a structured error response, no exposition.
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<std::string> response = client.Call("GET /metrics HTTP/1.1");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("\"code\": \"parse_error\""), std::string::npos)
      << *response;
  server.DrainAndStop();
}

TEST(PredictServerTest, ConcurrentConnectionsShareTheCache) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      PredictClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      // All clients ask for the same point: coalescing or cache hits.
      Result<std::string> r =
          client.Call(RequestLine("c" + std::to_string(c), 3));
      if (r.ok()) responses[static_cast<size_t>(c)] = *r;
    });
  }
  for (auto& t : threads) t.join();
  const size_t at = responses[0].find("\"result\"");
  ASSERT_NE(at, std::string::npos);
  const std::string expected = responses[0].substr(at);
  for (int c = 1; c < kClients; ++c) {
    ASSERT_FALSE(responses[static_cast<size_t>(c)].empty()) << c;
    EXPECT_EQ(responses[static_cast<size_t>(c)]
                  .substr(responses[static_cast<size_t>(c)]
                              .find("\"result\"")),
              expected)
        << "client " << c;
  }
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.requests_total, kClients);
  EXPECT_GE(stats.coalesced_total + stats.cache.hits, 1);
  server.DrainAndStop();
}

}  // namespace
}  // namespace mrperf
