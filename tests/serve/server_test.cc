#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"
#include "serve/request.h"

namespace mrperf {
namespace {

PredictServerOptions FastServerOptions() {
  PredictServerOptions options;
  options.port = 0;  // ephemeral
  options.service.num_threads = 2;
  return options;
}

std::string RequestLine(const std::string& id, int nodes) {
  return "{\"id\":\"" + id + "\",\"nodes\":" + std::to_string(nodes) +
         ",\"input_gb\":0.25,\"repetitions\":1}";
}

TEST(PredictServerTest, ServesPredictAndStatsOverTcp) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<std::string> predict = client.Call(RequestLine("t1", 2));
  ASSERT_TRUE(predict.ok());
  Result<JsonValue> parsed = ParseJson(*predict);
  ASSERT_TRUE(parsed.ok()) << *predict;
  EXPECT_EQ(parsed->Find("id")->string_value(), "t1");
  EXPECT_TRUE(parsed->Find("ok")->bool_value());
  EXPECT_GT(parsed->Find("result")->Find("measured_sec")->number_value(),
            0.0);

  Result<std::string> stats = client.Call(R"({"kind":"stats"})");
  ASSERT_TRUE(stats.ok());
  Result<JsonValue> stats_parsed = ParseJson(*stats);
  ASSERT_TRUE(stats_parsed.ok()) << *stats;
  EXPECT_EQ(stats_parsed->Find("stats")
                ->Find("requests_total")
                ->number_value(),
            1.0);
  server.DrainAndStop();
}

TEST(PredictServerTest, MalformedLinesAnswerWithoutDisconnecting) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Result<std::string> garbage = client.Call("definitely not json");
  ASSERT_TRUE(garbage.ok());
  EXPECT_NE(garbage->find("\"code\": \"parse_error\""), std::string::npos);

  Result<std::string> unknown = client.Call(R"({"profile":"zzz"})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown->find("\"code\": \"invalid_argument\""),
            std::string::npos);

  // The connection survived both errors.
  Result<std::string> fine = client.Call(RequestLine("ok", 2));
  ASSERT_TRUE(fine.ok());
  EXPECT_NE(fine->find("\"ok\": true"), std::string::npos);
  server.DrainAndStop();
}

TEST(PredictServerTest, PipelinedResponsesArriveInRequestOrder) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    // Mixed durations (different points) plus blank keep-alive lines:
    // order must still follow submission order.
    ASSERT_TRUE(client.SendLine("").ok());
    ASSERT_TRUE(
        client.SendLine(RequestLine("seq" + std::to_string(i), 2 + i % 3))
            .ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    Result<std::string> response = client.ReadLine();
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_NE(response->find("\"id\": \"seq" + std::to_string(i) + "\""),
              std::string::npos)
        << *response;
  }
  server.DrainAndStop();
}

TEST(PredictServerTest, DrainAndStopFlushesThenCloses) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client.SendLine(RequestLine("drain" + std::to_string(i), 2 + i))
            .ok());
  }
  // Wait until all three are admitted (sent bytes may not have been
  // read yet), then drain: admitted requests must still be answered.
  for (int spin = 0; server.service().Stats().requests_total < 3; ++spin) {
    ASSERT_LT(spin, 2000) << "requests never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.DrainAndStop();  // idempotent; drains admitted requests

  // Every admitted request was answered before the close...
  for (int i = 0; i < 3; ++i) {
    Result<std::string> response = client.ReadLine();
    ASSERT_TRUE(response.ok()) << "response " << i << " lost in drain";
    EXPECT_NE(response->find("\"ok\": true"), std::string::npos)
        << *response;
  }
  // ...then the connection was closed,
  EXPECT_FALSE(client.ReadLine().ok());
  // and the port no longer accepts connections.
  PredictClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());
  server.DrainAndStop();  // second call is a no-op
}

TEST(PredictServerTest, OversizedLineGetsErrorThenDisconnect) {
  PredictServerOptions options = FastServerOptions();
  options.max_line_bytes = 256;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendLine(std::string(1024, 'x')).ok());
  Result<std::string> response = client.ReadLine();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("\"code\": \"parse_error\""), std::string::npos);
  EXPECT_NE(response->find("exceeds"), std::string::npos);
  EXPECT_FALSE(client.ReadLine().ok());  // connection was terminated
  // The transport-level error is still visible in the service counters.
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.request_errors_total, 1);
  EXPECT_EQ(stats.responses_total, 1);
  server.DrainAndStop();
}

TEST(PredictServerTest, ConcurrentConnectionsShareTheCache) {
  PredictServer server(FastServerOptions());
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      PredictClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      // All clients ask for the same point: coalescing or cache hits.
      Result<std::string> r =
          client.Call(RequestLine("c" + std::to_string(c), 3));
      if (r.ok()) responses[static_cast<size_t>(c)] = *r;
    });
  }
  for (auto& t : threads) t.join();
  const size_t at = responses[0].find("\"result\"");
  ASSERT_NE(at, std::string::npos);
  const std::string expected = responses[0].substr(at);
  for (int c = 1; c < kClients; ++c) {
    ASSERT_FALSE(responses[static_cast<size_t>(c)].empty()) << c;
    EXPECT_EQ(responses[static_cast<size_t>(c)]
                  .substr(responses[static_cast<size_t>(c)]
                              .find("\"result\"")),
              expected)
        << "client " << c;
  }
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.requests_total, kClients);
  EXPECT_GE(stats.coalesced_total + stats.cache.hits, 1);
  server.DrainAndStop();
}

}  // namespace
}  // namespace mrperf
