/// TSan-targeted stress tests for the event-loop transport: many
/// concurrent clients pipelining bursts (heavy duplicate overlap, so
/// batching and coalescing engage), slow-loris partial lines, clients
/// that disconnect mid-write, and a DrainAndStop racing a thousand
/// connections — all against a live PredictServer on a fixed event-loop
/// thread budget. Every pipelined request must get exactly one in-order
/// response, and shutdown must always terminate.

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"

namespace mrperf {
namespace {

std::string ModelOnlyLine(const std::string& id, int nodes) {
  return "{\"id\":\"" + id + "\",\"nodes\":" + std::to_string(nodes) +
         ",\"input_gb\":0.25,\"model_only\":true}";
}

TEST(PredictServerStressTest, ManyPipelinedClientsGetOrderedResponses) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::vector<int> ok_responses(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok_responses, c] {
      PredictClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      // Pipeline the whole burst before reading anything: responses
      // must come back in request order, matched by id.
      for (int i = 0; i < kRequests; ++i) {
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        ASSERT_TRUE(client.SendLine(ModelOnlyLine(id, 2 + (i % 5))).ok());
      }
      for (int i = 0; i < kRequests; ++i) {
        Result<std::string> response = client.ReadLine();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        const std::string want_id =
            "\"c" + std::to_string(c) + "-" + std::to_string(i) + "\"";
        EXPECT_NE(response->find(want_id), std::string::npos)
            << "out-of-order response for client " << c << ": " << *response;
        if (response->find("\"error\"") == std::string::npos) {
          ++ok_responses[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_responses[c], kRequests) << "client " << c;
  }

  // 8 clients × 25 requests over 5 distinct keys: between in-flight
  // coalescing and the shared solve cache, duplicate work must have
  // collapsed (a re-evaluated key hits the cache even when its timing
  // never overlapped another request's).
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.responses_total, kClients * kRequests);
  EXPECT_GT(stats.coalesced_total + stats.cache.hits, 0);

  server.DrainAndStop();
}

TEST(PredictServerStressTest, DrainAndStopRacesActiveClients) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, c] {
      PredictClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        return;  // server may already be stopping — that's the race
      }
      int answered = 0;
      for (int i = 0; i < 50; ++i) {
        const std::string id =
            "d" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.SendLine(ModelOnlyLine(id, 2 + (i % 3))).ok()) break;
        Result<std::string> response = client.ReadLine();
        // A drained server half-closes after flushing: every response
        // read before EOF must be well-formed (result or structured
        // rejection), and EOF itself is a clean end of session.
        if (!response.ok()) break;
        EXPECT_NE(response->find(id), std::string::npos) << *response;
        ++answered;
      }
      EXPECT_GE(answered, 0);
    });
  }
  // Stop while the clients are mid-conversation.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.DrainAndStop();
  for (std::thread& t : clients) t.join();
}

/// Raw TCP socket for byte-level client behavior PredictClient cannot
/// express: unterminated fragments (slow loris) and abrupt closes.
class RawConn {
 public:
  ~RawConn() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

TEST(PredictServerStressTest, SlowLorisPartialLinesNeverStallOtherClients) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  options.event_loop_threads = 2;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Slow-loris connections: bytes trickle in with no newline. On the
  // old thread-per-connection transport each pinned a reader thread;
  // on the event loop they are just buffered fds that must never delay
  // the fast clients interleaved below.
  constexpr int kLoris = 32;
  std::vector<RawConn> loris(kLoris);
  const std::string fragment = "{\"id\":\"slow\",\"node";  // mid-key cut
  for (int i = 0; i < kLoris; ++i) {
    ASSERT_TRUE(loris[i].Connect(server.port())) << i;
    ASSERT_TRUE(loris[i].Send(fragment)) << i;
  }

  // With every loris parked, a normal client must still be served
  // promptly, pipelined order intact.
  PredictClient fast;
  ASSERT_TRUE(fast.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        fast.SendLine(ModelOnlyLine("f" + std::to_string(i), 2 + i % 3))
            .ok());
  }
  for (int i = 0; i < 5; ++i) {
    Result<std::string> response = fast.ReadLine();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"f" + std::to_string(i) + "\""),
              std::string::npos)
        << *response;
  }

  // Trickle a second fragment (still no newline), then complete half of
  // the loris lines: completed requests get real responses.
  for (int i = 0; i < kLoris; ++i) {
    ASSERT_TRUE(loris[i].Send("s\":2,"));
  }
  for (int i = 0; i < kLoris; i += 2) {
    ASSERT_TRUE(loris[i].Send("\"input_gb\":0.25,\"model_only\":true}\n"));
  }

  // Drain with half the loris mid-line: BeginDrain half-closes them and
  // shutdown must terminate regardless.
  server.DrainAndStop();
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.connections_current, 0);
  EXPECT_GE(stats.connections_total, kLoris + 1);
}

TEST(PredictServerStressTest, MidWriteDisconnectsDoNotLeakOrCrash) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  options.event_loop_threads = 2;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Clients pipeline a burst and vanish without reading: the server
  // hits send failures mid-response (EPIPE/ECONNRESET), must keep
  // resolving the owed evaluations, and must release every connection.
  constexpr int kRounds = 6;
  constexpr int kPerRound = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<RawConn> clients(kPerRound);
    for (int c = 0; c < kPerRound; ++c) {
      ASSERT_TRUE(clients[c].Connect(server.port()));
      std::string burst;
      for (int i = 0; i < 10; ++i) {
        burst += ModelOnlyLine(
            "w" + std::to_string(round) + "-" + std::to_string(c) + "-" +
                std::to_string(i),
            2 + i % 4);
        burst += '\n';
      }
      ASSERT_TRUE(clients[c].Send(burst));
    }
    // Abrupt close with responses still in flight (RST likely: unread
    // inbound bytes may remain).
    for (RawConn& c : clients) c.Close();
  }

  // The service still serves a well-behaved client afterwards.
  PredictClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Result<std::string> response = client.Call(ModelOnlyLine("after", 2));
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("\"ok\": true"), std::string::npos);

  server.DrainAndStop();
  // Every vanished connection was reaped; nothing leaked.
  EXPECT_EQ(server.service().Stats().connections_current, 0);
}

TEST(PredictServerStressTest, DrainRacesAThousandConnections) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  options.event_loop_threads = 2;  // fixed budget, C10k-style fan-in
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // A thousand mostly-idle connections (some with an unread fragment),
  // plus a few active pipeliners, all racing DrainAndStop. The old
  // transport would have needed 2000 threads for this; the gate here is
  // that shutdown terminates promptly and every active request is
  // answered or cleanly rejected — never silently dropped.
  constexpr int kIdle = 1000;
  std::vector<RawConn> idle(kIdle);
  int connected = 0;
  for (int i = 0; i < kIdle; ++i) {
    if (!idle[i].Connect(server.port())) break;
    ++connected;
    if (i % 5 == 0) idle[i].Send("{\"id\":");  // parked fragment
  }
  ASSERT_EQ(connected, kIdle);

  std::vector<std::thread> active;
  for (int c = 0; c < 4; ++c) {
    active.emplace_back([&server, c] {
      PredictClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      int sent = 0;
      for (int i = 0; i < 20; ++i) {
        const std::string id =
            "r" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.SendLine(ModelOnlyLine(id, 2 + i % 3)).ok()) break;
        ++sent;
      }
      for (int i = 0; i < sent; ++i) {
        Result<std::string> response = client.ReadLine();
        if (!response.ok()) break;  // drained: clean EOF ends the session
        EXPECT_NE(response->find("\"r" + std::to_string(c) + "-"),
                  std::string::npos)
            << *response;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.DrainAndStop();  // must terminate with 1k conns parked
  for (std::thread& t : active) t.join();
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.connections_current, 0);
  EXPECT_GE(stats.connections_total, kIdle);
  EXPECT_EQ(stats.event_loop_threads, 2);
}

}  // namespace
}  // namespace mrperf
