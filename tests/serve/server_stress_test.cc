/// TSan-targeted stress test for the TCP transport: many concurrent
/// clients, each pipelining a burst of request lines (heavy duplicate
/// overlap, so batching and coalescing engage), against a live
/// PredictServer — then a DrainAndStop racing late arrivals. Every
/// pipelined request must get exactly one in-order response.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"

namespace mrperf {
namespace {

std::string ModelOnlyLine(const std::string& id, int nodes) {
  return "{\"id\":\"" + id + "\",\"nodes\":" + std::to_string(nodes) +
         ",\"input_gb\":0.25,\"model_only\":true}";
}

TEST(PredictServerStressTest, ManyPipelinedClientsGetOrderedResponses) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::vector<int> ok_responses(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok_responses, c] {
      PredictClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      // Pipeline the whole burst before reading anything: responses
      // must come back in request order, matched by id.
      for (int i = 0; i < kRequests; ++i) {
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        ASSERT_TRUE(client.SendLine(ModelOnlyLine(id, 2 + (i % 5))).ok());
      }
      for (int i = 0; i < kRequests; ++i) {
        Result<std::string> response = client.ReadLine();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        const std::string want_id =
            "\"c" + std::to_string(c) + "-" + std::to_string(i) + "\"";
        EXPECT_NE(response->find(want_id), std::string::npos)
            << "out-of-order response for client " << c << ": " << *response;
        if (response->find("\"error\"") == std::string::npos) {
          ++ok_responses[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_responses[c], kRequests) << "client " << c;
  }

  // 8 clients × 25 requests over 5 distinct keys: between in-flight
  // coalescing and the shared solve cache, duplicate work must have
  // collapsed (a re-evaluated key hits the cache even when its timing
  // never overlapped another request's).
  const ServeStatsSnapshot stats = server.service().Stats();
  EXPECT_EQ(stats.responses_total, kClients * kRequests);
  EXPECT_GT(stats.coalesced_total + stats.cache.hits, 0);

  server.DrainAndStop();
}

TEST(PredictServerStressTest, DrainAndStopRacesActiveClients) {
  PredictServerOptions options;
  options.service.num_threads = 2;
  PredictServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, c] {
      PredictClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        return;  // server may already be stopping — that's the race
      }
      int answered = 0;
      for (int i = 0; i < 50; ++i) {
        const std::string id =
            "d" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.SendLine(ModelOnlyLine(id, 2 + (i % 3))).ok()) break;
        Result<std::string> response = client.ReadLine();
        // A drained server half-closes after flushing: every response
        // read before EOF must be well-formed (result or structured
        // rejection), and EOF itself is a clean end of session.
        if (!response.ok()) break;
        EXPECT_NE(response->find(id), std::string::npos) << *response;
        ++answered;
      }
      EXPECT_GE(answered, 0);
    });
  }
  // Stop while the clients are mid-conversation.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.DrainAndStop();
  for (std::thread& t : clients) t.join();
}

}  // namespace
}  // namespace mrperf
