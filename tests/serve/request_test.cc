#include "serve/request.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/json.h"

namespace mrperf {
namespace {

PredictRequest ParsePredict(const std::string& line) {
  Result<ServeRequest> parsed = ParseServeRequest(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, ServeRequest::Kind::kPredict);
  return parsed->predict;
}

TEST(ParseServeRequestTest, DefaultsMatchExperimentPointDefaults) {
  const PredictRequest request = ParsePredict("{}");
  EXPECT_EQ(request.point, ExperimentPoint{});
  EXPECT_EQ(request.repetitions, 5);
  EXPECT_EQ(request.seed, 1234u);
}

TEST(ParseServeRequestTest, ParsesEveryField) {
  const PredictRequest request = ParsePredict(
      R"({"kind":"predict","id":"r1","nodes":6,"input_gb":0.5,"jobs":3,)"
      R"("block_mb":64,"reducers":4,"scheduler":"tetris",)"
      R"("profile":"terasort","cluster":"2x65536MBx12c+1x16384MBx4c",)"
      R"("repetitions":2,"seed":99})");
  EXPECT_EQ(request.point.num_nodes, 6);
  EXPECT_EQ(request.point.input_bytes, kGiB / 2);
  EXPECT_EQ(request.point.num_jobs, 3);
  EXPECT_EQ(request.point.block_size_bytes, 64 * kMiB);
  EXPECT_EQ(request.point.num_reducers, 4);
  EXPECT_EQ(request.point.scenario.scheduler,
            SchedulerKind::kTetrisPacking);
  EXPECT_EQ(request.point.scenario.profile, "terasort");
  ASSERT_EQ(request.point.scenario.cluster.size(), 2u);
  EXPECT_EQ(request.point.scenario.cluster[0].count, 2);
  EXPECT_EQ(request.point.scenario.cluster[1].capacity.vcores, 4);
  EXPECT_EQ(request.repetitions, 2);
  EXPECT_EQ(request.seed, 99u);
}

// ---- canonicalization (satellite) --------------------------------------

TEST(CanonicalKeyTest, KeyOrderAndWhitespaceDoNotMatter) {
  const PredictRequest a = ParsePredict(
      R"({"nodes":4,"input_gb":1.0,"jobs":2,"profile":"terasort"})");
  const PredictRequest b = ParsePredict(
      "  { \"profile\" : \"terasort\" ,\t\"jobs\": 2, "
      "\"input_gb\": 1.0, \"nodes\": 4 }  ");
  EXPECT_EQ(CanonicalPredictKey(a), CanonicalPredictKey(b));
}

TEST(CanonicalKeyTest, SpelledOutDefaultsCanonicalizeLikeOmissions) {
  // Every field at its default, spelled out three different ways.
  const PredictRequest a = ParsePredict("{}");
  const PredictRequest b = ParsePredict(
      R"({"kind":"predict","nodes":4,"input_bytes":1073741824,"jobs":1,)"
      R"("block_mb":128,"reducers":2,"scheduler":"capacity",)"
      R"("profile":"default","cluster":"uniform","repetitions":5,)"
      R"("seed":1234,"model_only":false})");
  const PredictRequest c =
      ParsePredict(R"({"input_gb":1.0,"block_size_bytes":134217728})");
  EXPECT_EQ(CanonicalPredictKey(a), CanonicalPredictKey(b));
  EXPECT_EQ(CanonicalPredictKey(a), CanonicalPredictKey(c));
}

TEST(CanonicalKeyTest, ModelOnlyIsRepetitionsZero) {
  const PredictRequest a = ParsePredict(R"({"model_only":true})");
  const PredictRequest b = ParsePredict(R"({"repetitions":0})");
  EXPECT_EQ(a.repetitions, 0);
  EXPECT_EQ(CanonicalPredictKey(a), CanonicalPredictKey(b));
}

TEST(CanonicalKeyTest, EveryKnobChangesTheKey) {
  const std::string base = CanonicalPredictKey(ParsePredict("{}"));
  const char* variants[] = {
      R"({"nodes":5})",           R"({"input_gb":2.0})",
      R"({"jobs":2})",            R"({"block_mb":64})",
      R"({"reducers":3})",        R"({"scheduler":"tetris"})",
      R"({"profile":"grep"})",    R"({"cluster":"2x16384MBx4c"})",
      R"({"repetitions":3})",     R"({"seed":7})",
  };
  for (const char* line : variants) {
    EXPECT_NE(CanonicalPredictKey(ParsePredict(line)), base)
        << "variant: " << line;
  }
}

// ---- structured errors (satellite) -------------------------------------

TEST(ParseServeRequestTest, AcceptsTheSpokenProtocolVersion) {
  // Version 2 (current) and version 1 (the PR5 wire protocol, still
  // spoken for old clients) both parse.
  const PredictRequest v2 = ParsePredict(R"({"version":2,"nodes":3})");
  EXPECT_EQ(v2.point.num_nodes, 3);
  const PredictRequest v1 = ParsePredict(R"({"version":1,"nodes":3})");
  EXPECT_EQ(v1.point.num_nodes, 3);
}

TEST(ParseServeRequestTest, RejectsProtocolVersionMismatch) {
  for (const char* line :
       {R"({"version":0})", R"({"version":3,"nodes":3})"}) {
    Result<ServeRequest> parsed = ParseServeRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_TRUE(parsed.status().IsInvalidArgument());
    // The message names the spoken range so old clients can
    // self-diagnose.
    EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
    EXPECT_NE(parsed.status().message().find(
                  std::to_string(kServeProtocolVersion)),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find(
                  std::to_string(kMinServeProtocolVersion)),
              std::string::npos);
  }
}

// ---- QoS wire fields (PR9) ---------------------------------------------

TEST(ParseServeRequestTest, PriorityDefaultsToBulkAndParsesBothClasses) {
  EXPECT_EQ(ParsePredict("{}").priority, RequestPriority::kBulk);
  EXPECT_EQ(ParsePredict(R"({"priority":"bulk"})").priority,
            RequestPriority::kBulk);
  EXPECT_EQ(ParsePredict(R"({"priority":"interactive","nodes":3})").priority,
            RequestPriority::kInteractive);
}

TEST(ParseServeRequestTest, UnknownPriorityIsANamedInvalidArgument) {
  Result<ServeRequest> parsed =
      ParseServeRequest(R"({"priority":"turbo"})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_EQ(RequestErrorCode(parsed.status()),
            ServeErrorCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("turbo"), std::string::npos);
  // Non-string priorities are errors too, not silent bulk.
  EXPECT_FALSE(ParseServeRequest(R"({"priority":1})").ok());
}

TEST(ParseServeRequestTest, DeadlineParsesWithinItsBounds) {
  EXPECT_EQ(ParsePredict("{}").deadline_ms, 0);  // 0 = no deadline
  EXPECT_EQ(ParsePredict(R"({"deadline_ms":250})").deadline_ms, 250);
  EXPECT_EQ(ParsePredict(R"({"deadline_ms":86400000})").deadline_ms,
            kMaxDeadlineMs);
}

TEST(ParseServeRequestTest, OutOfRangeDeadlineIsInvalidArgument) {
  const char* bad[] = {
      R"({"deadline_ms":0})",         R"({"deadline_ms":-5})",
      R"({"deadline_ms":86400001})",  R"({"deadline_ms":1e18})",
      R"({"deadline_ms":2.5})",       R"({"deadline_ms":"soon"})",
  };
  for (const char* line : bad) {
    Result<ServeRequest> parsed = ParseServeRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(RequestErrorCode(parsed.status()),
              ServeErrorCode::kInvalidArgument)
        << line;
    EXPECT_NE(parsed.status().message().find("deadline_ms"),
              std::string::npos)
        << line;
  }
}

TEST(CanonicalKeyTest, SchedulingMetadataDoesNotChangeTheKey) {
  // Priority and deadline affect *when* an evaluation runs, never its
  // result — excluding them is what lets an interactive request
  // coalesce onto a bulk duplicate with byte-identical responses.
  const std::string base = CanonicalPredictKey(ParsePredict("{}"));
  EXPECT_EQ(CanonicalPredictKey(
                ParsePredict(R"({"priority":"interactive"})")),
            base);
  EXPECT_EQ(CanonicalPredictKey(ParsePredict(R"({"deadline_ms":500})")),
            base);
}

TEST(ResponseTest, QosErrorCodeNamesAreStable) {
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kQuotaExceeded),
               "quota_exceeded");
  EXPECT_STREQ(RequestPriorityName(RequestPriority::kBulk), "bulk");
  EXPECT_STREQ(RequestPriorityName(RequestPriority::kInteractive),
               "interactive");
}

TEST(ParseServeRequestTest, MalformedJsonIsAnError) {
  EXPECT_FALSE(ParseServeRequest("not json at all").ok());
  EXPECT_FALSE(ParseServeRequest("{\"nodes\": }").ok());
  EXPECT_FALSE(ParseServeRequest("[1, 2, 3]").ok());  // not an object
}

TEST(ParseServeRequestTest, UnknownProfileIsAStructuredError) {
  Result<ServeRequest> parsed =
      ParseServeRequest(R"({"profile":"sorting-hat"})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().message().find("sorting-hat"),
            std::string::npos);
}

TEST(ParseServeRequestTest, RejectsBadFieldsWithNamedErrors) {
  const char* bad[] = {
      R"({"kind":"transmogrify"})",
      R"({"nodes":0})",
      R"({"nodes":2.5})",
      R"({"nodes":"four"})",
      R"({"input_gb":-1})",
      R"({"jobs":0})",
      R"({"reducers":-1})",
      R"({"scheduler":"fifo9000"})",
      R"({"cluster":"2x0MBx4c"})",
      R"({"cluster":"garbage"})",
      R"({"repetitions":-1})",
      R"({"repetitions":101})",
      R"({"input_gb":1e300})",
      R"({"input_gb":9007200})",
      R"({"seed":-1})",
      R"({"seed":9007199254740993})",
      R"({"typo_field":1})",
      R"({"id":42})",
      R"({"input_gb":1.0,"input_bytes":5})",
      R"({"block_mb":64,"block_size_bytes":5})",
      R"({"model_only":true,"repetitions":3})",
      R"({"kind":"stats","nodes":4})",
  };
  for (const char* line : bad) {
    Result<ServeRequest> parsed = ParseServeRequest(line);
    EXPECT_FALSE(parsed.ok()) << "line: " << line;
  }
}

TEST(ParseServeRequestTest, ErrorClassificationIsParseVsInvalid) {
  // The wire contract behind bench_serve_load's malformed-line gate:
  // "not even a JSON object" classifies as parse_error, well-formed
  // JSON with bad fields as invalid_argument.
  const char* parse_errors[] = {"{{{", "not json", "[1]", "\"str\"", "42"};
  for (const char* line : parse_errors) {
    Result<ServeRequest> parsed = ParseServeRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(RequestErrorCode(parsed.status()),
              ServeErrorCode::kParseError)
        << line;
  }
  const char* invalid[] = {R"({"profile":"zzz"})", R"({"nodes":0})",
                           R"({"typo":1})"};
  for (const char* line : invalid) {
    Result<ServeRequest> parsed = ParseServeRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(RequestErrorCode(parsed.status()),
              ServeErrorCode::kInvalidArgument)
        << line;
  }
}

TEST(ParseServeRequestTest, StatsKindParses) {
  Result<ServeRequest> parsed =
      ParseServeRequest(R"({"kind":"stats","id":"s1","reset_window":true})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ServeRequest::Kind::kStats);
  EXPECT_EQ(parsed->id.value(), "s1");
  EXPECT_TRUE(parsed->stats.reset_window);
}

// ---- responses ---------------------------------------------------------

TEST(ResponseTest, PredictResponseEmbedsSweepJsonObjectVerbatim) {
  ExperimentResult result;
  result.point.num_nodes = 3;
  result.measured_sec = 100.5;
  result.forkjoin_sec = 97.25;
  result.tripathi_sec = std::nan("");  // exercises the null rule
  result.model_converged = true;
  const std::string response = MakePredictResponse({"r9"}, result);
  Result<JsonValue> parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed->Find("id")->string_value(), "r9");
  EXPECT_TRUE(parsed->Find("ok")->bool_value());
  const JsonValue* obj = parsed->Find("result");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->Find("nodes")->number_value(), 3.0);
  EXPECT_EQ(obj->Find("measured_sec")->number_value(), 100.5);
  EXPECT_TRUE(obj->Find("tripathi_sec")->is_null());
}

TEST(ResponseTest, ErrorResponseCarriesCodeAndEscapedMessage) {
  const std::string response = MakeErrorResponse(
      std::nullopt, ServeErrorCode::kOverloaded, "queue \"full\"\n");
  Result<JsonValue> parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed->Find("id")->is_null());
  EXPECT_FALSE(parsed->Find("ok")->bool_value());
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string_value(), "overloaded");
  EXPECT_EQ(error->Find("message")->string_value(), "queue \"full\"\n");
}

TEST(ResponseTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kParseError),
               "parse_error");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kShuttingDown),
               "shutting_down");
  EXPECT_EQ(ServeErrorCodeFromStatus(Status::InvalidArgument("x")),
            ServeErrorCode::kInvalidArgument);
  EXPECT_EQ(ServeErrorCodeFromStatus(Status::NotConverged("x")),
            ServeErrorCode::kNotConverged);
  EXPECT_EQ(ServeErrorCodeFromStatus(Status::Internal("x")),
            ServeErrorCode::kInternal);
}

TEST(TaskForRequestTest, PinsSeedAndRepetitions) {
  const PredictRequest request =
      ParsePredict(R"({"nodes":2,"repetitions":3,"seed":42})");
  const ExperimentOptions base = DefaultExperimentOptions();
  const SweepRunner::Task task = TaskForRequest(request, base);
  EXPECT_FALSE(task.derive_seed);
  EXPECT_EQ(task.options.base_seed, 42u);
  EXPECT_EQ(task.options.repetitions, 3);
  EXPECT_EQ(task.point.num_nodes, 2);
  // Base calibration carries over untouched.
  EXPECT_EQ(task.options.sim.task_cv, base.sim.task_cv);
}

}  // namespace
}  // namespace mrperf
