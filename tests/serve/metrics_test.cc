#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "serve/request.h"
#include "serve/stats.h"

namespace mrperf {
namespace {

ServeStatsSnapshot PopulatedSnapshot() {
  ServeStatsSnapshot snapshot;
  snapshot.queue_depth = 2;
  snapshot.draining = false;
  snapshot.requests_total = 100;
  snapshot.evaluations_total = 60;
  snapshot.coalesced_total = 40;
  snapshot.rejected_overload_total = 3;
  snapshot.rejected_shutdown_total = 1;
  snapshot.rejected_quota_total = 7;
  snapshot.deadline_exceeded_total = 2;
  snapshot.request_errors_total = 5;
  snapshot.responses_total = 118;
  snapshot.threads = 4;
  snapshot.event_loop_threads = 2;
  snapshot.event_loop_pending_tasks = 9;
  snapshot.connections_current = 12;
  snapshot.connections_total = 34;
  snapshot.metrics_requests_total = 6;
  snapshot.cache.hits = 80;
  snapshot.cache.misses = 20;
  snapshot.cache.size = 15;
  snapshot.cache.insertions = 20;
  snapshot.cache.evictions = 5;
  snapshot.cache.solves = 20;
  snapshot.cache.solve_iterations = 600;
  snapshot.cache.checkpoints = 1;
  snapshot.cache.recoveries = 1;
  snapshot.cache_shards = 8;

  auto& bulk =
      snapshot.latency_by_priority[static_cast<int>(RequestPriority::kBulk)];
  bulk.count = 90;
  bulk.sum_ms = 4500.0;
  bulk.buckets[2] = 50;   // (2, 5]
  bulk.buckets[6] = 30;   // (50, 100]
  bulk.buckets[13] = 10;  // +Inf
  auto& interactive = snapshot.latency_by_priority[static_cast<int>(
      RequestPriority::kInteractive)];
  interactive.count = 10;
  interactive.sum_ms = 42.0;
  interactive.buckets[0] = 6;
  interactive.buckets[3] = 4;
  return snapshot;
}

TEST(PrometheusMetricsTest, ExpositionValidatesAndCarriesCoreFamilies) {
  const std::string body = FormatPrometheusMetrics(PopulatedSnapshot());
  const Status valid = ValidatePrometheusText(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;

  // Spot-check the families the scrape-config example documents.
  for (const char* needle : {
           "# TYPE predictd_requests_total counter",
           "predictd_requests_total 100",
           "# TYPE predictd_queue_depth gauge",
           "predictd_rejected_total{reason=\"quota\"} 7",
           "predictd_rejected_total{reason=\"overload\"} 3",
           "predictd_deadline_exceeded_total 2",
           "predictd_event_loop_threads 2",
           "predictd_event_loop_pending_tasks 9",
           "predictd_connections 12",
           "predictd_connections_total 34",
           "predictd_metrics_requests_total 6",
           "predictd_cache_lookups_total{result=\"hit\"} 80",
           "# TYPE predictd_request_latency_milliseconds histogram",
           "predictd_request_latency_milliseconds_count{priority=\"bulk\"}"
           " 90",
           "predictd_request_latency_milliseconds_count{"
           "priority=\"interactive\"} 10",
       }) {
    EXPECT_NE(body.find(needle), std::string::npos)
        << "missing: " << needle << "\n"
        << body;
  }
}

TEST(PrometheusMetricsTest, HistogramBucketsAreCumulativeWithInf) {
  const std::string body = FormatPrometheusMetrics(PopulatedSnapshot());
  // bulk buckets: 50 in (2,5], 30 in (50,100], 10 beyond the last bound
  // => cumulative le="5" is 50, le="100" is 80, le="+Inf" is 90.
  EXPECT_NE(body.find("predictd_request_latency_milliseconds_bucket{"
                      "priority=\"bulk\",le=\"5\"} 50"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("predictd_request_latency_milliseconds_bucket{"
                      "priority=\"bulk\",le=\"100\"} 80"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("predictd_request_latency_milliseconds_bucket{"
                      "priority=\"bulk\",le=\"+Inf\"} 90"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("predictd_request_latency_milliseconds_sum{"
                      "priority=\"bulk\"} 4500"),
            std::string::npos)
      << body;
}

TEST(PrometheusMetricsTest, EmptySnapshotStillValidates) {
  const ServeStatsSnapshot empty;
  const std::string body = FormatPrometheusMetrics(empty);
  const Status valid = ValidatePrometheusText(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
}

// ---- the validator itself (the bench gate reuses it) -------------------

TEST(ValidatePrometheusTextTest, AcceptsMinimalWellFormedExposition) {
  const Status ok = ValidatePrometheusText(
      "# HELP x_total a counter\n"
      "# TYPE x_total counter\n"
      "x_total 3\n"
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_sum 1.5\n"
      "h_count 2\n");
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(ValidatePrometheusTextTest, RejectsSampleBeforeType) {
  EXPECT_FALSE(ValidatePrometheusText("x_total 3\n"
                                      "# TYPE x_total counter\n")
                   .ok());
}

TEST(ValidatePrometheusTextTest, RejectsDuplicateType) {
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x gauge\n"
                                      "x 1\n"
                                      "# TYPE x gauge\n"
                                      "x 2\n")
                   .ok());
}

TEST(ValidatePrometheusTextTest, RejectsNonCumulativeHistogram) {
  EXPECT_FALSE(ValidatePrometheusText("# TYPE h histogram\n"
                                      "h_bucket{le=\"1\"} 5\n"
                                      "h_bucket{le=\"+Inf\"} 3\n"  // shrank
                                      "h_sum 1\n"
                                      "h_count 3\n")
                   .ok());
}

TEST(ValidatePrometheusTextTest, RejectsHistogramWithoutInfBucket) {
  EXPECT_FALSE(ValidatePrometheusText("# TYPE h histogram\n"
                                      "h_bucket{le=\"1\"} 1\n"
                                      "h_sum 1\n"
                                      "h_count 1\n")
                   .ok());
}

TEST(ValidatePrometheusTextTest, RejectsCountMismatchingInfBucket) {
  EXPECT_FALSE(ValidatePrometheusText("# TYPE h histogram\n"
                                      "h_bucket{le=\"+Inf\"} 2\n"
                                      "h_sum 1\n"
                                      "h_count 9\n")
                   .ok());
}

TEST(ValidatePrometheusTextTest, RejectsMalformedSampleLines) {
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x gauge\n"
                                      "x notanumber\n")
                   .ok());
  EXPECT_FALSE(ValidatePrometheusText("just words\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x gauge\n"
                                      "x{unclosed=\"1\n")
                   .ok());
}

}  // namespace
}  // namespace mrperf
