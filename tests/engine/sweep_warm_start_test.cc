/// Warm-start and chunk-scheduling properties of the sweep engine: a
/// warm sweep must be byte-identical at any worker count (chunk layout
/// and warm chains are pure functions of the point index), must match
/// the cold sweep within the solver tolerance while executing strictly
/// fewer damped MVA sweeps, and the chunk deque must rebalance
/// adversarially skewed point costs without perturbing results. The
/// cold path must be invariant under the chunking knob itself.

#include "engine/sweep_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/sweep_csv.h"

namespace mrperf {
namespace {

SweepOptions BaseOptions(int threads) {
  SweepOptions opts;
  opts.num_threads = threads;
  opts.experiment = DefaultExperimentOptions();
  opts.experiment.repetitions = 1;
  return opts;
}

/// Distinct neighboring points (no two pose the same model problem), so
/// the sweep exercises cross-point warm chains rather than exact-repeat
/// cache hits.
SweepGrid NeighborGrid() {
  SweepGrid grid;
  grid.Nodes({2, 3}).InputGigabytes({0.25, 0.375}).Jobs({1, 2});
  return grid;
}

std::string SweepCsv(const SweepOptions& opts, const SweepGrid& grid) {
  SweepRunner runner(opts);
  SweepReport report = runner.Run(grid);
  EXPECT_TRUE(report.all_ok()) << report.first_error().ToString();
  return FormatSweepCsv(report.values());
}

TEST(SweepWarmStartTest, WarmSweepIsByteIdenticalAcross128Workers) {
  SweepOptions warm = BaseOptions(1);
  warm.warm_start = true;
  warm.chunk_points = 2;
  const std::string one = SweepCsv(warm, NeighborGrid());
  for (int threads : {2, 8}) {
    SweepOptions opts = warm;
    opts.num_threads = threads;
    EXPECT_EQ(SweepCsv(opts, NeighborGrid()), one)
        << "warm sweep diverged at " << threads << " workers";
  }
}

TEST(SweepWarmStartTest, ColdSweepIsInvariantUnderChunkingKnob) {
  // With warm-start off, chunked scheduling is pure plumbing: any
  // chunk_points value must reproduce the same bytes.
  const std::string base = SweepCsv(BaseOptions(4), NeighborGrid());
  for (size_t chunk_points : {size_t{1}, size_t{3}, size_t{64}}) {
    SweepOptions opts = BaseOptions(4);
    opts.chunk_points = chunk_points;
    EXPECT_EQ(SweepCsv(opts, NeighborGrid()), base)
        << "chunk_points=" << chunk_points;
  }
}

TEST(SweepWarmStartTest, WarmMatchesColdWithinToleranceAndCutsSweeps) {
  // A carry-compatible chain: identical structure (nodes, jobs,
  // reducers, and input/block ratio, hence task count and center
  // count), growing per-task demand. Neighboring points then pose
  // same-shaped, different-valued A4 problems — the case cross-point
  // warm chains exist for.
  std::vector<SweepRunner::Task> tasks;
  for (int i = 0; i < 4; ++i) {
    SweepRunner::Task task;
    task.options = DefaultExperimentOptions();
    task.options.repetitions = 1;
    task.point.num_nodes = 2;
    task.point.num_jobs = 1;
    task.point.block_size_bytes = (96 + 16 * i) * kMiB;
    task.point.input_bytes = 4 * task.point.block_size_bytes;
    tasks.push_back(task);
  }

  // Shared cache off in both arms: discrete placement makes many outer
  // iterations pose the exact same problem, which the cold cache memos
  // just as well as the warm path's model-local memo — holding the
  // cache fixed isolates the warm-start lever itself (the same
  // methodology as bench_scenario_sweep's ablation).
  SweepOptions cold_opts = BaseOptions(2);
  cold_opts.experiment.repetitions = 1;
  cold_opts.use_mva_cache = false;
  SweepRunner cold_runner(cold_opts);
  SweepReport cold = cold_runner.RunTasks(tasks);
  ASSERT_TRUE(cold.all_ok());

  SweepOptions warm_opts = cold_opts;
  warm_opts.warm_start = true;
  warm_opts.chunk_points = 4;
  SweepRunner warm_runner(warm_opts);
  SweepReport warm = warm_runner.RunTasks(tasks);
  ASSERT_TRUE(warm.all_ok());

  int64_t cold_sweeps = 0, warm_sweeps = 0;
  int warm_solves = 0;
  ASSERT_EQ(cold.results.size(), warm.results.size());
  for (size_t i = 0; i < cold.results.size(); ++i) {
    const ExperimentResult& c = *cold.results[i];
    const ExperimentResult& w = *warm.results[i];
    // The simulator is untouched by warm starts.
    EXPECT_EQ(c.measured_sec, w.measured_sec) << "point " << i;
    // The model lands on the same fixed point within tolerance.
    EXPECT_NEAR(c.forkjoin_sec, w.forkjoin_sec,
                1e-6 * std::abs(c.forkjoin_sec))
        << "point " << i;
    EXPECT_NEAR(c.tripathi_sec, w.tripathi_sec,
                1e-6 * std::abs(c.tripathi_sec))
        << "point " << i;
    cold_sweeps += c.mva_iterations;
    warm_sweeps += w.mva_iterations;
    warm_solves += w.mva_warm_solves;
    EXPECT_EQ(c.mva_warm_solves, 0) << "cold sweep ran a warm solve";
  }
  // The perf claim, as a deterministic property: strictly fewer
  // executed damped sweeps, via actually warm-started solves.
  EXPECT_LT(warm_sweeps, cold_sweeps);
  EXPECT_GT(warm_solves, 0);
}

TEST(SweepWarmStartTest, WorkStealingRebalancesSkewedCostsDeterministically) {
  // Adversarial skew: the first tasks are an order of magnitude heavier
  // (more input, more jobs, more repetitions), and chunk_points=1 turns
  // every point into a stealable chunk. Workers that finish the light
  // tail must steal the heavy heads' chunks without changing any bytes.
  std::vector<SweepRunner::Task> tasks;
  for (int i = 0; i < 12; ++i) {
    SweepRunner::Task task;
    task.options = DefaultExperimentOptions();
    const bool heavy = i < 3;
    task.options.repetitions = heavy ? 3 : 1;
    task.point.num_nodes = heavy ? 6 : 2;
    task.point.input_bytes = static_cast<int64_t>(
        (heavy ? 1.0 : 0.125) * static_cast<double>(kGiB));
    task.point.num_jobs = heavy ? 3 : 1;
    tasks.push_back(task);
  }

  const auto run = [&tasks](int threads, bool warm) {
    SweepOptions opts;
    opts.num_threads = threads;
    opts.experiment = DefaultExperimentOptions();
    opts.warm_start = warm;
    opts.chunk_points = 1;
    SweepRunner runner(opts);
    SweepReport report = runner.RunTasks(tasks);
    EXPECT_TRUE(report.all_ok()) << report.first_error().ToString();
    return FormatSweepCsv(report.values());
  };
  for (const bool warm : {false, true}) {
    const std::string serial = run(1, warm);
    EXPECT_EQ(run(8, warm), serial)
        << (warm ? "warm" : "cold") << " stealing changed results";
  }
}

TEST(SweepWarmStartTest, RepetitionFanOutMatchesSequentialEvaluation) {
  // A grid with fewer chunks than pool threads fans repetitions out as
  // sub-tasks; the assembled medians must equal the sequential ones.
  SweepGrid grid;
  grid.Nodes({2}).InputGigabytes({0.25}).Jobs({1, 2});
  SweepOptions serial_opts = BaseOptions(1);
  serial_opts.experiment.repetitions = 3;
  const std::string serial = SweepCsv(serial_opts, grid);

  SweepOptions fan_opts = serial_opts;
  fan_opts.num_threads = 8;  // 2 points, 1 chunk -> rep fan-out kicks in
  EXPECT_EQ(SweepCsv(fan_opts, grid), serial);
}

}  // namespace
}  // namespace mrperf
