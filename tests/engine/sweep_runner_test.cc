#include "engine/sweep_runner.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

namespace mrperf {
namespace {

/// Small, fast grid: 4 points, one simulator repetition each.
SweepOptions FastSweepOptions(int threads) {
  SweepOptions opts;
  opts.num_threads = threads;
  opts.experiment = DefaultExperimentOptions();
  opts.experiment.repetitions = 1;
  return opts;
}

SweepGrid SmallGrid() {
  SweepGrid grid;
  grid.Nodes({2, 3}).InputGigabytes({0.25}).Jobs({1, 2});
  return grid;
}

TEST(PointSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(PointSeed(1234, 0), PointSeed(1234, 0));
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < 1000; ++i) {
    seeds.insert(PointSeed(1234, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions on a realistic sweep
  EXPECT_NE(PointSeed(1234, 0), PointSeed(1235, 0));
}

TEST(SweepRunnerTest, ResultsArriveInPointOrder) {
  SweepRunner runner(FastSweepOptions(2));
  const auto points = SmallGrid().Expand();
  SweepReport report = runner.Run(points);
  ASSERT_EQ(report.results.size(), points.size());
  ASSERT_TRUE(report.all_ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(report.results[i]->point, points[i]) << "index " << i;
  }
  EXPECT_EQ(report.threads_used, 2);
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(SweepRunnerTest, IdenticalResultsAtOneFourAndEightThreads) {
  // The engine's core guarantee: worker count never changes results.
  std::vector<SweepReport> reports;
  for (int threads : {1, 4, 8}) {
    SweepRunner runner(FastSweepOptions(threads));
    reports.push_back(runner.Run(SmallGrid()));
    ASSERT_TRUE(reports.back().all_ok());
  }
  for (size_t t = 1; t < reports.size(); ++t) {
    ASSERT_EQ(reports[t].results.size(), reports[0].results.size());
    for (size_t i = 0; i < reports[0].results.size(); ++i) {
      const ExperimentResult& a = *reports[0].results[i];
      const ExperimentResult& b = *reports[t].results[i];
      // Bitwise equality, not tolerance: same seeds, same solves.
      EXPECT_EQ(a.measured_sec, b.measured_sec) << "point " << i;
      EXPECT_EQ(a.forkjoin_sec, b.forkjoin_sec) << "point " << i;
      EXPECT_EQ(a.tripathi_sec, b.tripathi_sec) << "point " << i;
      EXPECT_EQ(a.forkjoin_error, b.forkjoin_error) << "point " << i;
      EXPECT_EQ(a.tripathi_error, b.tripathi_error) << "point " << i;
    }
  }
}

TEST(SweepRunnerTest, UniformClusterShapeScenarioReproducesSeedSeries) {
  // Acceptance gate for the scenario axes: a grid that pins the scenario
  // axes to the paper baseline — uniform shape, capacity scheduler,
  // "wordcount" — must reproduce the pre-scenario grid's series
  // byte-identically (this is the same grid family as fig10-15, shrunk
  // to stay fast).
  SweepGrid seed_grid = SmallGrid();
  SweepGrid scenario_grid = SmallGrid();
  scenario_grid.Schedulers({SchedulerKind::kCapacityFifo})
      .Profiles({"wordcount"})
      .ClusterShapes({{}});

  SweepOptions opts = FastSweepOptions(4);
  opts.derive_point_seeds = false;  // the figure benches' configuration
  SweepRunner seed_runner(opts);
  SweepRunner scenario_runner(opts);
  const SweepReport a = seed_runner.Run(seed_grid);
  const SweepReport b = scenario_runner.Run(scenario_grid);
  ASSERT_TRUE(a.all_ok());
  ASSERT_TRUE(b.all_ok());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i]->measured_sec, b.results[i]->measured_sec);
    EXPECT_EQ(a.results[i]->forkjoin_sec, b.results[i]->forkjoin_sec);
    EXPECT_EQ(a.results[i]->tripathi_sec, b.results[i]->tripathi_sec);
    EXPECT_EQ(a.results[i]->forkjoin_error, b.results[i]->forkjoin_error);
    EXPECT_EQ(a.results[i]->tripathi_error, b.results[i]->tripathi_error);
  }
}

TEST(SweepRunnerTest, ScenarioGridIsThreadCountInvariant) {
  // The determinism guarantee extends to the scenario axes: a scheduler
  // x profile x cluster-shape grid is byte-identical at any worker
  // count.
  SweepGrid grid;
  grid.Schedulers(
          {SchedulerKind::kCapacityFifo, SchedulerKind::kTetrisPacking})
      .Profiles({"grep"})
      .ClusterShapes({{},
                      {ClusterNodeGroup{1, Resource{64 * kGiB, 12}},
                       ClusterNodeGroup{1, Resource{16 * kGiB, 4}}}})
      .Nodes({2})
      .InputGigabytes({0.25});
  std::vector<SweepReport> reports;
  for (int threads : {1, 4}) {
    SweepRunner runner(FastSweepOptions(threads));
    reports.push_back(runner.Run(grid));
    ASSERT_TRUE(reports.back().all_ok())
        << reports.back().first_error().ToString();
  }
  ASSERT_EQ(reports[0].results.size(), 4u);
  for (size_t i = 0; i < reports[0].results.size(); ++i) {
    const ExperimentResult& a = *reports[0].results[i];
    const ExperimentResult& b = *reports[1].results[i];
    EXPECT_EQ(a.measured_sec, b.measured_sec) << "point " << i;
    EXPECT_EQ(a.forkjoin_sec, b.forkjoin_sec) << "point " << i;
    EXPECT_EQ(a.tripathi_sec, b.tripathi_sec) << "point " << i;
  }
}

TEST(SweepRunnerTest, CacheDoesNotChangeResults) {
  SweepOptions with_cache = FastSweepOptions(2);
  SweepOptions without_cache = FastSweepOptions(2);
  without_cache.use_mva_cache = false;
  SweepRunner cached(with_cache);
  SweepRunner uncached(without_cache);
  const auto points = SmallGrid().Expand();
  SweepReport a = cached.Run(points);
  SweepReport b = uncached.Run(points);
  ASSERT_TRUE(a.all_ok());
  ASSERT_TRUE(b.all_ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a.results[i]->forkjoin_sec, b.results[i]->forkjoin_sec);
    EXPECT_EQ(a.results[i]->tripathi_sec, b.results[i]->tripathi_sec);
  }
  EXPECT_GT(a.cache_stats.lookups(), 0);
  EXPECT_EQ(b.cache_stats.lookups(), 0);
}

TEST(SweepRunnerTest, ShardedCacheDoesNotChangeResults) {
  // Sharding is a pure locking change: the sweep must be byte-identical
  // whether the runner's cache has 1 shard or 8.
  SweepOptions sharded_opts = FastSweepOptions(2);
  sharded_opts.cache_shards = 8;
  SweepRunner single(FastSweepOptions(2));
  SweepRunner sharded(sharded_opts);
  EXPECT_EQ(single.cache().shard_count(), 1);
  EXPECT_EQ(sharded.cache().shard_count(), 8);

  const auto points = SmallGrid().Expand();
  SweepReport a = single.Run(points);
  SweepReport b = sharded.Run(points);
  ASSERT_TRUE(a.all_ok());
  ASSERT_TRUE(b.all_ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a.results[i]->measured_sec, b.results[i]->measured_sec);
    EXPECT_EQ(a.results[i]->forkjoin_sec, b.results[i]->forkjoin_sec);
    EXPECT_EQ(a.results[i]->tripathi_sec, b.results[i]->tripathi_sec);
  }
  EXPECT_EQ(a.cache_stats.lookups(), b.cache_stats.lookups());
  EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
}

TEST(SweepRunnerTest, PerPointSeedsDecorrelateMeasurements) {
  // Two grid points identical in every axis: with derived seeds their
  // simulated medians must come from different streams.
  SweepGrid grid;
  grid.Nodes({2, 2}).InputGigabytes({0.25});
  SweepRunner runner(FastSweepOptions(1));
  SweepReport report = runner.Run(grid);
  ASSERT_TRUE(report.all_ok());
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_NE(report.results[0]->measured_sec,
            report.results[1]->measured_sec);
  // The model side sees identical inputs and must agree exactly.
  EXPECT_EQ(report.results[0]->forkjoin_sec,
            report.results[1]->forkjoin_sec);
}

TEST(SweepRunnerTest, PinnedSeedsReproduceSerialBehavior) {
  SweepOptions opts = FastSweepOptions(2);
  opts.derive_point_seeds = false;
  SweepRunner runner(opts);
  SweepGrid grid;
  grid.Nodes({2, 2}).InputGigabytes({0.25});
  SweepReport report = runner.Run(grid);
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.results[0]->measured_sec,
            report.results[1]->measured_sec);
}

TEST(SweepRunnerTest, InvalidPointsFailWithoutPoisoningTheSweep) {
  SweepRunner runner(FastSweepOptions(2));
  std::vector<ExperimentPoint> points = SmallGrid().Expand();
  points[1].num_nodes = 0;  // invalid
  SweepReport report = runner.Run(points);
  ASSERT_EQ(report.results.size(), points.size());
  EXPECT_FALSE(report.all_ok());
  EXPECT_TRUE(report.first_error().IsInvalidArgument());
  EXPECT_FALSE(report.results[1].ok());
  EXPECT_TRUE(report.results[0].ok());
  EXPECT_TRUE(report.results[2].ok());
  EXPECT_EQ(report.values().size(), points.size() - 1);
}

TEST(SweepRunnerTest, RunModelsSolvesEveryPoint) {
  SweepRunner runner(FastSweepOptions(2));
  const auto points = SmallGrid().Expand();
  const auto models = runner.RunModels(points);
  ASSERT_EQ(models.size(), points.size());
  for (const auto& m : models) {
    ASSERT_TRUE(m.ok());
    EXPECT_GT(m->forkjoin_response, 0.0);
    EXPECT_GT(m->tripathi_response, 0.0);
  }
}

TEST(SweepRunnerTest, RunTasksHonorsPerTaskOptions) {
  SweepRunner runner(FastSweepOptions(2));
  SweepRunner::Task base;
  base.point.num_nodes = 2;
  base.point.input_bytes = kGiB / 4;
  base.options = DefaultExperimentOptions();
  base.options.repetitions = 1;

  SweepRunner::Task pinned = base;
  pinned.derive_seed = false;
  // Same pinned task twice: identical streams, identical results.
  SweepReport report = runner.RunTasks({pinned, pinned, base});
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.results[0]->measured_sec,
            report.results[1]->measured_sec);
  // The derived-seed task runs a different stream.
  EXPECT_NE(report.results[2]->measured_sec,
            report.results[0]->measured_sec);
}

TEST(SweepRunnerTest, ProgressReportsEveryPointInCompletionOrder) {
  SweepOptions opts = FastSweepOptions(4);
  std::mutex mu;
  std::vector<SweepProgress> seen;
  opts.progress = [&](const SweepProgress& p) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(p);
  };
  SweepRunner runner(opts);
  const auto points = SmallGrid().Expand();
  SweepReport report = runner.Run(points);
  ASSERT_TRUE(report.all_ok());
  // One serialized call per point, counting 1..N with a fixed total.
  ASSERT_EQ(seen.size(), points.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].points_done, i + 1);
    EXPECT_EQ(seen[i].points_total, points.size());
  }
  // Cache stats are live snapshots: lookups never decrease.
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].cache.lookups(), seen[i - 1].cache.lookups());
  }
}

TEST(SweepRunnerTest, ProgressCoversRunModels) {
  SweepOptions opts = FastSweepOptions(2);
  std::mutex mu;
  size_t calls = 0;
  size_t last_total = 0;
  opts.progress = [&](const SweepProgress& p) {
    std::lock_guard<std::mutex> lock(mu);
    ++calls;
    last_total = p.points_total;
  };
  SweepRunner runner(opts);
  const auto points = SmallGrid().Expand();
  const auto models = runner.RunModels(points);
  ASSERT_EQ(models.size(), points.size());
  EXPECT_EQ(calls, points.size());
  EXPECT_EQ(last_total, points.size());
}

TEST(SweepRunnerTest, ProgressCallbackDoesNotPerturbResults) {
  SweepOptions quiet = FastSweepOptions(2);
  SweepOptions noisy = FastSweepOptions(2);
  noisy.progress = [](const SweepProgress&) {};
  SweepRunner a(quiet);
  SweepRunner b(noisy);
  const auto points = SmallGrid().Expand();
  SweepReport ra = a.Run(points);
  SweepReport rb = b.Run(points);
  ASSERT_TRUE(ra.all_ok());
  ASSERT_TRUE(rb.all_ok());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(ra.results[i]->forkjoin_sec, rb.results[i]->forkjoin_sec);
    EXPECT_EQ(ra.results[i]->measured_sec, rb.results[i]->measured_sec);
  }
}

TEST(SweepRunnerTest, CacheHitsAccumulateAcrossRuns) {
  // The runner's pool and cache persist: re-running the same grid should
  // be answered almost entirely from cache.
  SweepRunner runner(FastSweepOptions(2));
  const auto points = SmallGrid().Expand();
  SweepReport first = runner.Run(points);
  ASSERT_TRUE(first.all_ok());
  SweepReport second = runner.Run(points);
  ASSERT_TRUE(second.all_ok());
  EXPECT_GT(second.cache_stats.hits, first.cache_stats.hits);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(first.results[i]->forkjoin_sec,
              second.results[i]->forkjoin_sec);
  }
}

}  // namespace
}  // namespace mrperf
