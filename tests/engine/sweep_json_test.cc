#include "engine/sweep_json.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace mrperf {
namespace {

// ---- minimal JSON parser (validation only) ----------------------------
// Just enough grammar for the sweep serializer's output — objects,
// arrays, strings, numbers, true/false/null. Bare nan/inf tokens (the
// pre-fix output for non-finite doubles) fail the value parse, so
// "parses" is the round-trip regression the serializer must keep.

bool ParseJsonValue(const std::string& s, size_t& i);

void SkipWs(const std::string& s, size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool ParseLiteral(const std::string& s, size_t& i, const char* lit) {
  const size_t n = std::strlen(lit);
  if (s.compare(i, n, lit) != 0) return false;
  i += n;
  return true;
}

bool ParseJsonString(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
    } else if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;
}

bool ParseJsonNumber(const std::string& s, size_t& i) {
  const size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  size_t digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    ++digits;
  }
  if (digits == 0) return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  return i > start;
}

bool ParseJsonObject(const std::string& s, size_t& i) {
  if (s[i] != '{') return false;
  ++i;
  SkipWs(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (i < s.size()) {
    SkipWs(s, i);
    if (!ParseJsonString(s, i)) return false;
    SkipWs(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    if (!ParseJsonValue(s, i)) return false;
    SkipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
  return false;
}

bool ParseJsonArray(const std::string& s, size_t& i) {
  if (s[i] != '[') return false;
  ++i;
  SkipWs(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return true;
  }
  while (i < s.size()) {
    if (!ParseJsonValue(s, i)) return false;
    SkipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    return false;
  }
  return false;
}

bool ParseJsonValue(const std::string& s, size_t& i) {
  SkipWs(s, i);
  if (i >= s.size()) return false;
  switch (s[i]) {
    case '{':
      return ParseJsonObject(s, i);
    case '[':
      return ParseJsonArray(s, i);
    case '"':
      return ParseJsonString(s, i);
    case 't':
      return ParseLiteral(s, i, "true");
    case 'f':
      return ParseLiteral(s, i, "false");
    case 'n':
      return ParseLiteral(s, i, "null");
    default:
      return ParseJsonNumber(s, i);
  }
}

bool IsValidJson(const std::string& s) {
  size_t i = 0;
  if (!ParseJsonValue(s, i)) return false;
  SkipWs(s, i);
  return i == s.size();
}

ExperimentResult SampleResult() {
  ExperimentResult r;
  r.point.num_nodes = 6;
  r.point.input_bytes = 5 * kGiB;
  r.point.num_jobs = 4;
  r.point.block_size_bytes = 64 * kMiB;
  r.point.num_reducers = 2;
  r.measured_sec = 123.456;
  r.forkjoin_sec = 117.0;
  r.tripathi_sec = 130.5;
  r.forkjoin_error = -0.0523;
  r.tripathi_error = 0.0571;
  r.model_iterations = 17;
  r.model_converged = true;
  return r;
}

TEST(SweepJsonTest, EmptyResultsProduceEmptyArray) {
  EXPECT_EQ(FormatSweepJson({}), "[]\n");
}

TEST(SweepJsonTest, RecordsCarryAllFields) {
  const std::string json = FormatSweepJson({SampleResult()});
  EXPECT_NE(json.find("\"nodes\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"input_bytes\": 5368709120"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"block_size_bytes\": 67108864"), std::string::npos);
  EXPECT_NE(json.find("\"reducers\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"measured_sec\": 123.456"), std::string::npos);
  EXPECT_NE(json.find("\"model_iterations\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"model_converged\": true"), std::string::npos);
  // Valid array shape: one object, no trailing comma.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.find(",\n  {"), std::string::npos);
}

TEST(SweepJsonTest, ResultObjectHelperMatchesArrayElementByteExactly) {
  // The serving layer builds predict responses from
  // AppendSweepResultJsonObject; the byte-identity gate between served
  // and offline results relies on this helper being exactly the array
  // element FormatSweepJson writes.
  std::string object;
  AppendSweepResultJsonObject(object, SampleResult());
  EXPECT_EQ(FormatSweepJson({SampleResult()}), "[\n  " + object + "\n]\n");
  EXPECT_TRUE(IsValidJson(object));
}

TEST(SweepJsonTest, DoublesRoundTripBitExactly) {
  ExperimentResult r = SampleResult();
  r.measured_sec = 1.0 / 3.0;
  const std::string json = FormatSweepJson({r});
  const size_t pos = json.find("\"measured_sec\": ");
  ASSERT_NE(pos, std::string::npos);
  double parsed = 0.0;
  ASSERT_EQ(
      std::sscanf(json.c_str() + pos + strlen("\"measured_sec\": "), "%lf",
                  &parsed),
      1);
  EXPECT_EQ(parsed, 1.0 / 3.0);  // bitwise, thanks to %.17g
}

TEST(SweepJsonTest, OutputIsParseableJson) {
  EXPECT_TRUE(IsValidJson(FormatSweepJson({})));
  EXPECT_TRUE(
      IsValidJson(FormatSweepJson({SampleResult(), SampleResult()})));
}

TEST(SweepJsonTest, ScenarioFieldsCarryTheScenario) {
  ExperimentResult r = SampleResult();
  r.point.scenario.scheduler = SchedulerKind::kTetrisPacking;
  r.point.scenario.profile = "grep";
  r.point.scenario.cluster = {ClusterNodeGroup{4, Resource{8 * kGiB, 8}}};
  const std::string json = FormatSweepJson({r});
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"scheduler\": \"tetris\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\": \"grep\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\": \"4x8192MBx8c\""), std::string::npos);
  // Default scenarios keep the baseline labels.
  const std::string base = FormatSweepJson({SampleResult()});
  EXPECT_NE(base.find("\"scheduler\": \"capacity\""), std::string::npos);
  EXPECT_NE(base.find("\"profile\": \"default\""), std::string::npos);
  EXPECT_NE(base.find("\"cluster\": \"uniform\""), std::string::npos);
}

TEST(SweepJsonTest, NonFiniteValuesSerializeAsNullAndStayParseable) {
  // Regression: %.17g used to print bare nan/inf tokens, producing
  // invalid JSON whenever a solve failed or an error ratio divided by
  // zero.
  ExperimentResult r = SampleResult();
  r.measured_sec = std::numeric_limits<double>::quiet_NaN();
  r.forkjoin_sec = std::numeric_limits<double>::infinity();
  r.tripathi_sec = -std::numeric_limits<double>::infinity();
  r.forkjoin_error = -std::numeric_limits<double>::quiet_NaN();
  const std::string json = FormatSweepJson({r});
  EXPECT_NE(json.find("\"measured_sec\": null"), std::string::npos);
  EXPECT_NE(json.find("\"forkjoin_sec\": null"), std::string::npos);
  EXPECT_NE(json.find("\"tripathi_sec\": null"), std::string::npos);
  EXPECT_NE(json.find("\"forkjoin_error\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_TRUE(IsValidJson(json));
  // Finite fields keep their round-trip representation.
  EXPECT_NE(json.find("\"tripathi_error\": "), std::string::npos);
}

TEST(SweepJsonTest, MultipleRecordsAreCommaSeparated) {
  ExperimentResult a = SampleResult();
  ExperimentResult b = SampleResult();
  b.point.num_nodes = 8;
  b.model_converged = false;
  const std::string json = FormatSweepJson({a, b});
  EXPECT_NE(json.find("\"nodes\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 8"), std::string::npos);
  EXPECT_NE(json.find("},\n  {"), std::string::npos);
  EXPECT_NE(json.find("\"model_converged\": false"), std::string::npos);
}

TEST(SweepJsonTest, WriteCreatesReadableFile) {
  const std::string path = ::testing::TempDir() + "sweep_json_test.json";
  ASSERT_TRUE(WriteSweepJson(path, {SampleResult()}).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), FormatSweepJson({SampleResult()}));
  std::remove(path.c_str());
}

TEST(SweepJsonTest, WriteToBadPathFails) {
  EXPECT_FALSE(
      WriteSweepJson("/nonexistent-dir/impossible.json", {SampleResult()})
          .ok());
}

}  // namespace
}  // namespace mrperf
