#include "engine/sweep_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace mrperf {
namespace {

ExperimentResult SampleResult() {
  ExperimentResult r;
  r.point.num_nodes = 6;
  r.point.input_bytes = 5 * kGiB;
  r.point.num_jobs = 4;
  r.point.block_size_bytes = 64 * kMiB;
  r.point.num_reducers = 2;
  r.measured_sec = 123.456;
  r.forkjoin_sec = 117.0;
  r.tripathi_sec = 130.5;
  r.forkjoin_error = -0.0523;
  r.tripathi_error = 0.0571;
  r.model_iterations = 17;
  r.model_converged = true;
  return r;
}

TEST(SweepJsonTest, EmptyResultsProduceEmptyArray) {
  EXPECT_EQ(FormatSweepJson({}), "[]\n");
}

TEST(SweepJsonTest, RecordsCarryAllFields) {
  const std::string json = FormatSweepJson({SampleResult()});
  EXPECT_NE(json.find("\"nodes\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"input_bytes\": 5368709120"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"block_size_bytes\": 67108864"), std::string::npos);
  EXPECT_NE(json.find("\"reducers\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"measured_sec\": 123.456"), std::string::npos);
  EXPECT_NE(json.find("\"model_iterations\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"model_converged\": true"), std::string::npos);
  // Valid array shape: one object, no trailing comma.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.find(",\n  {"), std::string::npos);
}

TEST(SweepJsonTest, DoublesRoundTripBitExactly) {
  ExperimentResult r = SampleResult();
  r.measured_sec = 1.0 / 3.0;
  const std::string json = FormatSweepJson({r});
  const size_t pos = json.find("\"measured_sec\": ");
  ASSERT_NE(pos, std::string::npos);
  double parsed = 0.0;
  ASSERT_EQ(
      std::sscanf(json.c_str() + pos + strlen("\"measured_sec\": "), "%lf",
                  &parsed),
      1);
  EXPECT_EQ(parsed, 1.0 / 3.0);  // bitwise, thanks to %.17g
}

TEST(SweepJsonTest, MultipleRecordsAreCommaSeparated) {
  ExperimentResult a = SampleResult();
  ExperimentResult b = SampleResult();
  b.point.num_nodes = 8;
  b.model_converged = false;
  const std::string json = FormatSweepJson({a, b});
  EXPECT_NE(json.find("\"nodes\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 8"), std::string::npos);
  EXPECT_NE(json.find("},\n  {"), std::string::npos);
  EXPECT_NE(json.find("\"model_converged\": false"), std::string::npos);
}

TEST(SweepJsonTest, WriteCreatesReadableFile) {
  const std::string path = ::testing::TempDir() + "sweep_json_test.json";
  ASSERT_TRUE(WriteSweepJson(path, {SampleResult()}).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), FormatSweepJson({SampleResult()}));
  std::remove(path.c_str());
}

TEST(SweepJsonTest, WriteToBadPathFails) {
  EXPECT_FALSE(
      WriteSweepJson("/nonexistent-dir/impossible.json", {SampleResult()})
          .ok());
}

}  // namespace
}  // namespace mrperf
