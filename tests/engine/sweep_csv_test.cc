#include "engine/sweep_csv.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace mrperf {
namespace {

ExperimentResult MakeResult(int nodes, double measured, double forkjoin) {
  ExperimentResult r;
  r.point.num_nodes = nodes;
  r.point.input_bytes = 1073741824;  // 1 GiB
  r.point.num_jobs = 2;
  r.point.block_size_bytes = 134217728;  // 128 MiB
  r.point.num_reducers = 2;
  r.measured_sec = measured;
  r.forkjoin_sec = forkjoin;
  r.tripathi_sec = forkjoin * 1.1;
  r.forkjoin_error = (forkjoin - measured) / measured;
  r.tripathi_error = (forkjoin * 1.1 - measured) / measured;
  r.model_iterations = 17;
  r.model_converged = true;
  return r;
}

TEST(SweepCsvTest, HeaderAndRowShape) {
  const std::string csv = FormatSweepCsv({MakeResult(4, 100.0, 110.0)});
  std::istringstream lines(csv);
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_FALSE(std::getline(lines, extra));

  EXPECT_EQ(header,
            "nodes,input_bytes,jobs,block_size_bytes,reducers,scheduler,"
            "profile,cluster,measured_sec,forkjoin_sec,tripathi_sec,"
            "forkjoin_error,tripathi_error,model_iterations,"
            "model_converged");
  // Same number of columns in header and row.
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row));
  EXPECT_EQ(row.substr(0, 2), "4,");
  EXPECT_NE(row.find("1073741824"), std::string::npos);
  // Default scenario renders as capacity/default/uniform.
  EXPECT_NE(row.find(",capacity,default,uniform,"), std::string::npos);
  EXPECT_NE(row.find(",17,1"), std::string::npos);
}

TEST(SweepCsvTest, DoublesRoundTripExactly) {
  // %.17g must reproduce the stored double exactly, so two CSVs diff
  // clean iff the sweeps agreed bit-for-bit.
  const double measured = 100.0 / 3.0;
  const double forkjoin = 110.0 / 7.0;
  const std::string csv = FormatSweepCsv({MakeResult(4, measured, forkjoin)});
  std::istringstream lines(csv);
  std::string header, row;
  std::getline(lines, header);
  std::getline(lines, row);
  // Columns 9 and 10 (1-based, after the scenario columns) hold
  // measured_sec / forkjoin_sec.
  std::istringstream fields(row);
  std::string field;
  for (int i = 0; i < 9; ++i) std::getline(fields, field, ',');
  EXPECT_EQ(std::stod(field), measured);
  std::getline(fields, field, ',');
  EXPECT_EQ(std::stod(field), forkjoin);
}

TEST(SweepCsvTest, ScenarioColumnsCarryTheScenario) {
  // num_nodes 9 is superseded by the shape's 4 total nodes: the nodes
  // column must report the count the point actually ran on.
  ExperimentResult r = MakeResult(9, 100.0, 110.0);
  r.point.scenario.scheduler = SchedulerKind::kTetrisPacking;
  r.point.scenario.profile = "terasort";
  r.point.scenario.cluster = {ClusterNodeGroup{2, Resource{64 * kGiB, 12}},
                              ClusterNodeGroup{2, Resource{16 * kGiB, 4}}};
  const std::string csv = FormatSweepCsv({r});
  EXPECT_NE(
      csv.find(",tetris,terasort,2x65536MBx12c+2x16384MBx4c,"),
      std::string::npos);
  EXPECT_NE(csv.find("\n4,"), std::string::npos);
  EXPECT_EQ(csv.find("\n9,"), std::string::npos);
}

TEST(SweepCsvTest, NonFiniteValuesAreSignNormalizedTokens) {
  // A failed solve or zero-division error ratio must not leak glibc's
  // "-nan" (platform-dependent) into the CSV.
  ExperimentResult r = MakeResult(4, 100.0, 110.0);
  r.measured_sec = std::numeric_limits<double>::quiet_NaN();
  r.forkjoin_sec = -std::numeric_limits<double>::quiet_NaN();
  r.tripathi_sec = std::numeric_limits<double>::infinity();
  r.forkjoin_error = -std::numeric_limits<double>::infinity();
  const std::string csv = FormatSweepCsv({r});
  EXPECT_NE(csv.find(",nan,nan,inf,-inf,"), std::string::npos);
  EXPECT_EQ(csv.find("-nan"), std::string::npos);
}

TEST(SweepCsvTest, EmptyResultsYieldHeaderOnly) {
  const std::string csv = FormatSweepCsv({});
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);  // exactly one line
}

TEST(SweepCsvTest, WriteCreatesReadableFile) {
  const std::string path = ::testing::TempDir() + "sweep_csv_test_out.csv";
  const std::vector<ExperimentResult> results = {
      MakeResult(4, 100.0, 110.0), MakeResult(8, 80.0, 85.0)};
  ASSERT_TRUE(WriteSweepCsv(path, results).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), FormatSweepCsv(results));
  std::remove(path.c_str());
}

TEST(SweepCsvTest, UnwritablePathReturnsError) {
  EXPECT_FALSE(
      WriteSweepCsv("/nonexistent-dir/deeply/nested/out.csv", {}).ok());
}

}  // namespace
}  // namespace mrperf
