#include "engine/sweep_grid.h"

#include <gtest/gtest.h>

namespace mrperf {
namespace {

TEST(SweepGridTest, EmptyGridIsSingleDefaultPoint) {
  SweepGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], ExperimentPoint{});
}

TEST(SweepGridTest, SizeIsProductOfAxisSizes) {
  SweepGrid grid;
  grid.Nodes({4, 6, 8})
      .InputGigabytes({1.0, 5.0})
      .Jobs({1, 2, 3, 4})
      .BlockSizes({64 * kMiB, 128 * kMiB})
      .Reducers({2});
  EXPECT_EQ(grid.size(), 3u * 2u * 4u * 2u * 1u);
  EXPECT_EQ(grid.Expand().size(), grid.size());
}

TEST(SweepGridTest, SingleAxisSweepKeepsOtherDefaults) {
  SweepGrid grid;
  grid.Nodes({4, 6, 8});
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 3u);
  const ExperimentPoint defaults;
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].input_bytes, defaults.input_bytes);
    EXPECT_EQ(points[i].num_jobs, defaults.num_jobs);
    EXPECT_EQ(points[i].block_size_bytes, defaults.block_size_bytes);
    EXPECT_EQ(points[i].num_reducers, defaults.num_reducers);
  }
  EXPECT_EQ(points[0].num_nodes, 4);
  EXPECT_EQ(points[1].num_nodes, 6);
  EXPECT_EQ(points[2].num_nodes, 8);
}

TEST(SweepGridTest, ExpandsRowMajorInDeclarationOrder) {
  SweepGrid grid;
  grid.Nodes({4, 8}).Jobs({1, 2});
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 4u);
  // nodes outermost, jobs innermost.
  EXPECT_EQ(points[0].num_nodes, 4);
  EXPECT_EQ(points[0].num_jobs, 1);
  EXPECT_EQ(points[1].num_nodes, 4);
  EXPECT_EQ(points[1].num_jobs, 2);
  EXPECT_EQ(points[2].num_nodes, 8);
  EXPECT_EQ(points[2].num_jobs, 1);
  EXPECT_EQ(points[3].num_nodes, 8);
  EXPECT_EQ(points[3].num_jobs, 2);
}

TEST(SweepGridTest, ExpansionIsDeterministic) {
  SweepGrid grid;
  grid.Nodes({4, 6, 8}).InputGigabytes({1.0, 5.0}).Jobs({1, 4});
  const auto a = grid.Expand();
  const auto b = grid.Expand();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "index " << i;
  }
}

TEST(SweepGridTest, InputGigabytesConverts) {
  SweepGrid grid;
  grid.InputGigabytes({1.0, 2.5});
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].input_bytes, 1 * kGiB);
  EXPECT_EQ(points[1].input_bytes, static_cast<int64_t>(2.5 * kGiB));
}

TEST(SweepGridTest, DuplicateAxisValuesArePreserved) {
  SweepGrid grid;
  grid.Nodes({4, 4, 4});  // repeated-measurement design
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.Expand().size(), 3u);
}

TEST(SweepGridTest, ExplicitlyEmptyAxisFallsBackToTheDefaultValue) {
  // Pinned behavior (documented in sweep_grid.h): an empty axis vector
  // is identical to never setting the axis — it contributes the single
  // default value, NOT a zero-point grid.
  SweepGrid grid;
  grid.Nodes({})
      .InputBytes({})
      .Jobs({})
      .BlockSizes({})
      .Reducers({})
      .Schedulers({})
      .Profiles({})
      .ClusterShapes({});
  EXPECT_EQ(grid.size(), 1u);
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], ExperimentPoint{});

  // Mixing an empty axis into a populated grid keeps the other axes.
  SweepGrid mixed;
  mixed.Nodes({4, 6}).Jobs({});
  EXPECT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed.Expand().size(), 2u);
}

TEST(SweepGridTest, ScenarioAxesExpandRowMajorOutermost) {
  const ClusterShape two_tier = {ClusterNodeGroup{2, Resource{64 * kGiB, 12}},
                                 ClusterNodeGroup{2, Resource{16 * kGiB, 4}}};
  SweepGrid grid;
  grid.Schedulers(
          {SchedulerKind::kCapacityFifo, SchedulerKind::kTetrisPacking})
      .Profiles({"wordcount", "terasort"})
      .ClusterShapes({{}, two_tier})
      .Nodes({4, 8});
  EXPECT_EQ(grid.size(), 16u);
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 16u);
  // scheduler outermost ▸ profile ▸ cluster shape ▸ nodes innermost.
  EXPECT_EQ(points[0].scenario.scheduler, SchedulerKind::kCapacityFifo);
  EXPECT_EQ(points[0].scenario.profile, "wordcount");
  EXPECT_TRUE(points[0].scenario.cluster.empty());
  EXPECT_EQ(points[0].num_nodes, 4);
  EXPECT_EQ(points[1].num_nodes, 8);
  EXPECT_EQ(points[2].scenario.cluster, two_tier);
  EXPECT_EQ(points[4].scenario.profile, "terasort");
  EXPECT_EQ(points[8].scenario.scheduler, SchedulerKind::kTetrisPacking);
  EXPECT_EQ(points[15].scenario.scheduler, SchedulerKind::kTetrisPacking);
  EXPECT_EQ(points[15].scenario.profile, "terasort");
  EXPECT_EQ(points[15].scenario.cluster, two_tier);
  EXPECT_EQ(points[15].num_nodes, 8);
}

TEST(SweepGridTest, UnsetScenarioAxesExpandIdenticallyToPreScenarioGrids) {
  // A grid that never touches the scenario axes must expand to the same
  // sequence as before the scenario axes existed: every point carries
  // the default (paper baseline) scenario.
  SweepGrid grid;
  grid.Nodes({4, 6, 8}).InputGigabytes({1.0, 5.0}).Jobs({1, 4});
  const auto points = grid.Expand();
  ASSERT_EQ(points.size(), 12u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.scenario.IsDefault());
  }
  EXPECT_EQ(points[0].num_nodes, 4);
  EXPECT_EQ(points[11].num_nodes, 8);
}

TEST(SweepGridTest, FullFigureGridMatchesPaperEvaluation) {
  // Figures 10-15 cover nodes × {1,5} GB × jobs × block size; the full
  // cross product is 3 * 2 * 4 * 2 = 48 scenario points.
  SweepGrid grid;
  grid.Nodes({4, 6, 8})
      .InputGigabytes({1.0, 5.0})
      .Jobs({1, 2, 3, 4})
      .BlockSizes({64 * kMiB, 128 * kMiB});
  EXPECT_EQ(grid.size(), 48u);
}

}  // namespace
}  // namespace mrperf
