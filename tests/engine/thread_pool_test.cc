#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace mrperf {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.Submit([] { return 3; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 3);
  EXPECT_EQ(pool.Submit([] { return 4; }).get(), 4);
}

TEST(ThreadPoolTest, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> executed{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&executed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++executed;
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(executed.load(), 64);
  EXPECT_EQ(pool.tasks_completed(), 64);
  for (auto& f : futures) f.get();  // all futures are fulfilled
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {}).get();
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_completed(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsWithoutExplicitShutdown) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&executed] { ++executed; });
    }
  }
  EXPECT_EQ(executed.load(), 16);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  auto outer = pool.Submit([&pool] {
    return pool.Submit([] { return 21; }).get() * 2;
  });
  // Two workers: the inner task runs on the free worker while the outer
  // waits. (Documented caveat: this pattern needs >= 2 workers.)
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace mrperf
