#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace mrperf {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.Submit([] { return 3; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 3);
  EXPECT_EQ(pool.Submit([] { return 4; }).get(), 4);
}

TEST(ThreadPoolTest, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> executed{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&executed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++executed;
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(executed.load(), 64);
  EXPECT_EQ(pool.tasks_completed(), 64);
  for (auto& f : futures) f.get();  // all futures are fulfilled
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {}).get();
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_completed(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsWithoutExplicitShutdown) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&executed] { ++executed; });
    }
  }
  EXPECT_EQ(executed.load(), 16);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  auto outer = pool.Submit([&pool] {
    return pool.Submit([] { return 21; }).get() * 2;
  });
  // Two workers: the inner task runs on the free worker while the outer
  // waits. (Documented caveat: this pattern needs >= 2 workers.)
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersRaceShutdownSafely) {
  // The serving layer's call site: producers keep submitting while a
  // drain shuts the pool down. Every Submit must either return a future
  // that is eventually fulfilled (accepted before shutdown) or throw
  // std::runtime_error — no third outcome, no lost tasks, no crash.
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> executed{0};
  ThreadPool pool(2);
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 256; ++i) {
        try {
          futures[static_cast<size_t>(t)].push_back(
              pool.Submit([&executed] { ++executed; }));
          ++accepted;
        } catch (const std::runtime_error&) {
          ++rejected;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.Shutdown();
  for (auto& t : submitters) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();  // accepted => fulfilled, never blocks
  }
  EXPECT_EQ(accepted.load() + rejected.load(), 4 * 256);
  EXPECT_EQ(executed.load(), accepted.load());  // drained, none dropped
  EXPECT_EQ(pool.tasks_completed(), accepted.load());
}

TEST(ThreadPoolTest, ExceptionsPropagateUnderConcurrentLoad) {
  // Half the tasks throw while many consumers collect concurrently:
  // each future must carry exactly its own task's outcome.
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i]() -> int {
      if (i % 2 == 0) throw std::runtime_error("task failed");
      return i;
    }));
  }
  std::atomic<int> threw{0};
  std::atomic<int> returned{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&, c] {
      for (int i = c; i < kTasks; i += 4) {
        try {
          const int value = futures[static_cast<size_t>(i)].get();
          EXPECT_EQ(value, i);
          EXPECT_NE(i % 2, 0);
          ++returned;
        } catch (const std::runtime_error&) {
          EXPECT_EQ(i % 2, 0);
          ++threw;
        }
      }
    });
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(threw.load(), kTasks / 2);
  EXPECT_EQ(returned.load(), kTasks / 2);
  // Throwing tasks must not have corrupted the pool.
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, ConcurrentShutdownCallersAllBlockUntilJoined) {
  // Regression: two Shutdown() callers used to race the join loop — the
  // second could return (or join the same std::thread, which is UB)
  // while the first was still mid-join. Now shutdowns serialize and
  // every caller returns only after the workers are joined, so the
  // accepted task's side effect is visible to all of them.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 12; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    std::vector<std::thread> shutdowns;
    shutdowns.reserve(4);
    for (int t = 0; t < 4; ++t) {
      shutdowns.emplace_back([&pool, &ran] {
        pool.Shutdown();
        // Every accepted task completed by the time ANY caller returns.
        EXPECT_EQ(ran.load(), 12);
      });
    }
    for (auto& t : shutdowns) t.join();
    EXPECT_EQ(pool.tasks_completed(), 12);
    EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
  }
}

}  // namespace
}  // namespace mrperf
