#include "history/job_history.h"

#include "model/model.h"

#include <sstream>

#include <gtest/gtest.h>

#include "workload/wordcount.h"

namespace mrperf {
namespace {

SimResult RunOnce(int nodes = 4, int64_t input = 1 * kGiB,
                  uint64_t seed = 5) {
  SimOptions opts;
  opts.seed = seed;
  opts.task_cv = 0.3;
  ClusterSimulator sim(PaperCluster(nodes), opts);
  SimJobSpec spec;
  spec.profile = WordCountProfile();
  spec.config = PaperHadoopConfig();
  spec.input_bytes = input;
  EXPECT_TRUE(sim.SubmitJob(spec).ok());
  auto r = sim.Run();
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(JobHistoryTest, IngestsSimulatedRun) {
  JobHistory history;
  ASSERT_TRUE(history.AddRun(RunOnce()).ok());
  // 8 maps + 2 reduces split into 2 subtasks each.
  EXPECT_EQ(history.TotalRecords(), 8u + 4u);
  EXPECT_EQ(history.OfClass(TaskClass::kMap).response.count(), 8u);
  EXPECT_EQ(history.OfClass(TaskClass::kShuffleSort).response.count(), 2u);
  EXPECT_EQ(history.OfClass(TaskClass::kMerge).response.count(), 2u);
}

TEST(JobHistoryTest, SubtaskSplitConservesTotals) {
  SimResult run = RunOnce();
  JobHistory history;
  ASSERT_TRUE(history.AddRun(run).ok());
  double reduce_response = 0.0;
  for (const auto& t : run.tasks) {
    if (t.type == TaskType::kReduce) reduce_response += t.ResponseTime();
  }
  const auto& ss = history.OfClass(TaskClass::kShuffleSort).response;
  const auto& mg = history.OfClass(TaskClass::kMerge).response;
  EXPECT_NEAR(ss.sum() + mg.sum(), reduce_response, 1e-6);
}

TEST(JobHistoryTest, RejectsNegativeRecords) {
  JobHistory history;
  EXPECT_FALSE(history
                   .AddRecord(TaskClass::kMap, -1.0, 0, 0, 0, 0, 0, 0)
                   .ok());
}

TEST(JobHistoryTest, BuildsValidModelInput) {
  JobHistory history;
  for (uint64_t seed : {1u, 2u, 3u}) {
    ASSERT_TRUE(history.AddRun(RunOnce(4, 1 * kGiB, seed)).ok());
  }
  auto in = history.BuildModelInput(PaperCluster(4), PaperHadoopConfig(),
                                    /*map_tasks=*/8, /*reduce_tasks=*/2,
                                    /*num_jobs=*/1);
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  EXPECT_TRUE(in->Validate().ok());
  EXPECT_GT(in->map_demand.Total(), 0.0);
  EXPECT_GT(in->init_map_response, 0.0);
  // Sample-based initial responses reflect contention, so they sit at or
  // above the pure demands.
  EXPECT_GE(in->init_map_response, in->map_demand.Total() - 1e-6);
}

TEST(JobHistoryTest, BuildsHeterogeneousModelInputFromNodeGroups) {
  // Regression: a heterogeneous ClusterConfig must propagate its node
  // groups into the ModelInput (shared ApplyClusterShape), not be
  // silently modeled as a uniform cluster of the stale num_nodes.
  JobHistory history;
  for (uint64_t seed : {1u, 2u, 3u}) {
    ASSERT_TRUE(history.AddRun(RunOnce(4, 1 * kGiB, seed)).ok());
  }
  ClusterConfig cluster = PaperCluster(4);
  cluster.node_groups = {ClusterNodeGroup{1, Resource{64 * kGiB, 12}},
                         ClusterNodeGroup{2, Resource{16 * kGiB, 4}}};
  auto in = history.BuildModelInput(cluster, PaperHadoopConfig(),
                                    /*map_tasks=*/8, /*reduce_tasks=*/2,
                                    /*num_jobs=*/1);
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  EXPECT_EQ(in->num_nodes, 3);
  EXPECT_EQ(in->NodeCount(), 3);
  ASSERT_EQ(in->node_groups.size(), 2u);
  EXPECT_EQ(in->NodeCpu(0), 12);
  EXPECT_EQ(in->NodeCpu(1), 4);
  EXPECT_EQ(in->NodeSlots(0), 32);  // 64 GiB / 2 GiB containers
  EXPECT_EQ(in->NodeSlots(2), 8);   // 16 GiB / 2 GiB containers
  EXPECT_TRUE(in->Validate().ok());
}

TEST(JobHistoryTest, ModelSolvesFromSampleInitialization) {
  // The §4.2.1 alternative initialization end-to-end: history -> input ->
  // converged model.
  JobHistory history;
  ASSERT_TRUE(history.AddRun(RunOnce()).ok());
  auto in = history.BuildModelInput(PaperCluster(4), PaperHadoopConfig(),
                                    8, 2, 1);
  ASSERT_TRUE(in.ok());
  auto r = SolveModel(*in);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->forkjoin_response, 0.0);
}

TEST(JobHistoryTest, MissingClassFailsPrecondition) {
  JobHistory empty;
  auto in = empty.BuildModelInput(PaperCluster(4), PaperHadoopConfig(), 8,
                                  2, 1);
  EXPECT_FALSE(in.ok());
  EXPECT_TRUE(in.status().IsFailedPrecondition());

  JobHistory maps_only;
  ASSERT_TRUE(
      maps_only.AddRecord(TaskClass::kMap, 10, 5, 5, 0, 4, 4, 0).ok());
  auto in2 = maps_only.BuildModelInput(PaperCluster(4), PaperHadoopConfig(),
                                       8, 2, 1);
  EXPECT_FALSE(in2.ok());
  // Map-only jobs need no reduce history.
  auto in3 = maps_only.BuildModelInput(
      PaperCluster(4), PaperHadoopConfig(128 * kMiB, 0), 8, 0, 1);
  EXPECT_TRUE(in3.ok());
}

TEST(JobHistoryTest, SaveLoadRoundTrip) {
  JobHistory history;
  ASSERT_TRUE(history.AddRun(RunOnce()).ok());
  std::stringstream buffer;
  history.Save(buffer);
  auto loaded = JobHistory::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->TotalRecords(), history.TotalRecords());
  for (int c = 0; c < kNumTaskClasses; ++c) {
    const auto cls = static_cast<TaskClass>(c);
    EXPECT_NEAR(loaded->OfClass(cls).response.mean(),
                history.OfClass(cls).response.mean(), 1e-9);
    EXPECT_NEAR(loaded->OfClass(cls).cpu_demand.variance(),
                history.OfClass(cls).cpu_demand.variance(), 1e-9);
  }
}

TEST(JobHistoryTest, LoadRejectsGarbage) {
  std::stringstream bad1("not-a-history 1");
  EXPECT_FALSE(JobHistory::Load(bad1).ok());
  std::stringstream bad2("mrhist 99");
  EXPECT_FALSE(JobHistory::Load(bad2).ok());
  std::stringstream bad3("mrhist 1\nmap 3 1.0");
  EXPECT_FALSE(JobHistory::Load(bad3).ok());
}

TEST(JobHistoryTest, AccumulatesAcrossRuns) {
  JobHistory history;
  ASSERT_TRUE(history.AddRun(RunOnce(4, 1 * kGiB, 1)).ok());
  const size_t after_one = history.TotalRecords();
  ASSERT_TRUE(history.AddRun(RunOnce(4, 1 * kGiB, 2)).ok());
  EXPECT_EQ(history.TotalRecords(), 2 * after_one);
}

TEST(RunningStatsTest, FromMomentsRoundTrip) {
  RunningStats s;
  for (double x : {1.0, 2.0, 5.0, 9.0}) s.Add(x);
  auto rebuilt = RunningStats::FromMoments(s.count(), s.mean(), s.variance(),
                                           s.min(), s.max());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->count(), s.count());
  EXPECT_NEAR(rebuilt->variance(), s.variance(), 1e-12);
}

TEST(RunningStatsTest, FromMomentsRejectsInconsistent) {
  EXPECT_FALSE(RunningStats::FromMoments(3, 5.0, -1.0, 0.0, 10.0).ok());
  EXPECT_FALSE(RunningStats::FromMoments(3, 5.0, 1.0, 6.0, 10.0).ok());
  EXPECT_FALSE(RunningStats::FromMoments(3, 5.0, 1.0, 0.0, 4.0).ok());
  EXPECT_TRUE(RunningStats::FromMoments(0, 0.0, 0.0, 0.0, 0.0).ok());
}

}  // namespace
}  // namespace mrperf
