/// Ablation: initialization of task response times (§4.2.1). The paper
/// argues initializing from the Herodotou static model converges faster
/// than sample-based (profile-history) initialization. We compare the
/// static initialization against deliberately poor starting points and
/// report iterations to convergence and the fixed point reached.
///
/// A final row turns on ModelOptions::warm_start: every outer-loop
/// iteration seeds its A4 solve with the previous iteration's converged
/// residence matrix, so the row reports the same fixed point with fewer
/// executed MVA sweeps — the intra-model half of the sweep engine's
/// warm-start design.

#include <cstdio>

#include "experiments/experiment.h"
#include "model/input.h"
#include "model/model.h"
#include "workload/wordcount.h"

int main() {
  using namespace mrperf;
  ExperimentPoint point;
  point.num_nodes = 4;
  point.input_bytes = 5 * kGiB;
  point.num_jobs = 2;

  auto base = ModelInputFromHerodotou(PaperCluster(point.num_nodes),
                                      PaperHadoopConfig(), WordCountProfile(),
                                      point.input_bytes, point.num_jobs);
  if (!base.ok()) {
    std::fprintf(stderr, "input failed\n");
    return 1;
  }

  ModelOptions opts = DefaultExperimentOptions().model;
  std::printf("%-28s | %9s %9s %6s %9s\n", "initialization", "forkjoin",
              "tripathi", "iters", "mva swps");
  struct Variant {
    const char* name;
    double scale;
    bool warm_start;
  };
  for (const Variant& v :
       {Variant{"herodotou static (paper)", 1.0, false},
        Variant{"pessimistic sample (x5)", 5.0, false},
        Variant{"optimistic sample (x0.2)", 0.2, false},
        Variant{"warm-start outer loop", 1.0, true}}) {
    ModelInput in = *base;
    in.init_map_response *= v.scale;
    in.init_shuffle_sort_response *= v.scale;
    in.init_merge_response *= v.scale;
    ModelOptions variant_opts = opts;
    variant_opts.warm_start = v.warm_start;
    auto r = SolveModel(in, variant_opts);
    if (!r.ok()) {
      std::fprintf(stderr, "model failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s | %9.1f %9.1f %6d %9lld\n", v.name,
                r->forkjoin_response, r->tripathi_response, r->iterations,
                static_cast<long long>(r->mva_iterations));
  }
  std::printf(
      "\nExpected shape: every initialization converges to the same fixed\n"
      "point (robustness), with iteration counts within a few of each\n"
      "other — the damped update forgets the starting point geometrically.\n"
      "The paper's preference for the static initialization (§4.2.1) is\n"
      "about avoiding a profiling pass, which this reproduces: no history\n"
      "is needed to produce the x1.0 row. The warm-start row reaches the\n"
      "same responses as the paper row while executing fewer MVA sweeps:\n"
      "each outer iteration resumes from the previous fixed point instead\n"
      "of the uniform solver init.\n");
  return 0;
}
