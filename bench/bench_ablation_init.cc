/// Ablation: initialization of task response times (§4.2.1). The paper
/// argues initializing from the Herodotou static model converges faster
/// than sample-based (profile-history) initialization. We compare the
/// static initialization against deliberately poor starting points and
/// report iterations to convergence and the fixed point reached.

#include <cstdio>

#include "experiments/experiment.h"
#include "model/input.h"
#include "model/model.h"
#include "workload/wordcount.h"

int main() {
  using namespace mrperf;
  ExperimentPoint point;
  point.num_nodes = 4;
  point.input_bytes = 5 * kGiB;
  point.num_jobs = 2;

  auto base = ModelInputFromHerodotou(PaperCluster(point.num_nodes),
                                      PaperHadoopConfig(), WordCountProfile(),
                                      point.input_bytes, point.num_jobs);
  if (!base.ok()) {
    std::fprintf(stderr, "input failed\n");
    return 1;
  }

  ModelOptions opts = DefaultExperimentOptions().model;
  std::printf("%-28s | %9s %9s %6s\n", "initialization", "forkjoin",
              "tripathi", "iters");
  struct Variant {
    const char* name;
    double scale;
  };
  for (const Variant& v : {Variant{"herodotou static (paper)", 1.0},
                           Variant{"pessimistic sample (x5)", 5.0},
                           Variant{"optimistic sample (x0.2)", 0.2}}) {
    ModelInput in = *base;
    in.init_map_response *= v.scale;
    in.init_shuffle_sort_response *= v.scale;
    in.init_merge_response *= v.scale;
    auto r = SolveModel(in, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "model failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s | %9.1f %9.1f %6d\n", v.name, r->forkjoin_response,
                r->tripathi_response, r->iterations);
  }
  std::printf(
      "\nExpected shape: every initialization converges to the same fixed\n"
      "point (robustness), with iteration counts within a few of each\n"
      "other — the damped update forgets the starting point geometrically.\n"
      "The paper's preference for the static initialization (§4.2.1) is\n"
      "about avoiding a profiling pass, which this reproduces: no history\n"
      "is needed to produce the x1.0 row.\n");
  return 0;
}
