/// Microbenchmark for the §4.3 complexity analysis: the MVA algorithm is
/// O(C²N²K). Sweeps task count (overlap MVA) and population (exact /
/// approximate MVA) to expose the scaling the paper derives.

#include <benchmark/benchmark.h>

#include "queueing/mva_approx.h"
#include "queueing/mva_exact.h"
#include "queueing/mva_overlap.h"

namespace mrperf {
namespace {

void BM_ExactMva(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 4},
                 {"net", CenterType::kQueueing, 1}};
  net.demand = {{8.0, 0.0}, {1.0, 3.0}, {4.0, 0.5}};
  net.population = {population, population, population};
  net.think_time = {0.0, 0.0, 0.0};
  for (auto _ : state) {
    auto sol = SolveMvaExact(net);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(population);
}
BENCHMARK(BM_ExactMva)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_ApproxMva(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 4},
                 {"net", CenterType::kQueueing, 1}};
  net.demand = {{8.0, 0.0}, {1.0, 3.0}, {4.0, 0.5}};
  net.population = {population, population, population};
  net.think_time = {0.0, 0.0, 0.0};
  for (auto _ : state) {
    auto sol = SolveMvaApprox(net);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(population);
}
BENCHMARK(BM_ApproxMva)->RangeMultiplier(2)->Range(2, 512)->Complexity();

void BM_OverlapMva(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  OverlapMvaProblem p;
  for (int n = 0; n < 4; ++n) {
    p.centers.push_back({"cpu" + std::to_string(n),
                         CenterType::kQueueing, 4});
    p.centers.push_back({"disk" + std::to_string(n),
                         CenterType::kQueueing, 1});
  }
  const size_t K = p.centers.size();
  for (int t = 0; t < tasks; ++t) {
    OverlapTask task;
    task.demand.assign(K, 0.0);
    task.demand[(t % 4) * 2] = 8.0;
    task.demand[(t % 4) * 2 + 1] = 2.0;
    p.tasks.push_back(task);
  }
  p.overlap.assign(tasks, std::vector<double>(tasks, 0.8));
  for (int i = 0; i < tasks; ++i) p.overlap[i][i] = 0.0;
  for (auto _ : state) {
    auto sol = SolveOverlapMva(p);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(tasks);
}
BENCHMARK(BM_OverlapMva)->RangeMultiplier(2)->Range(8, 256)->Complexity();

}  // namespace
}  // namespace mrperf

BENCHMARK_MAIN();
