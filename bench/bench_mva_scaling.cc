/// Microbenchmark for the §4.3 complexity analysis and the solver-kernel
/// paths. The MVA algorithm is O(C²N²K); the overlap-MVA interference
/// term O(T²K) per iteration is the hot path of every sweep point. This
/// bench sweeps task counts over the three kernel paths (scalar
/// reference vs blocked vs group-compressed, mva_kernel.h), reports the
/// blocked and grouped speedups, and sweeps population for the
/// exact/approximate MVA solvers. The grouped cells use the bench's
/// fixed 8 equivalence classes, so tasks-per-class grows with T — at
/// T = 256 that is 32 members/class, the regime the timeline produces.
///
/// Self-contained timing (no Google Benchmark) so CI can run it as a
/// perf-smoke gate:
///
///   bench_mva_scaling --smoke      small grid; exit 1 on any solver
///                                  error, scalar/blocked bit mismatch,
///                                  grouped-vs-reference tolerance
///                                  breach, or a warm-started solve that
///                                  fails to cut fixed-point iterations
///   bench_mva_scaling              full sweep (default min 200 ms/cell)
///   --min-ms=N --max-tasks=T      timing budget / largest task count
///   --json-out=PATH               machine-readable per-T medians
///                                  (BENCH_mva_scaling.json in CI) for
///                                  cross-run perf-trajectory diffing

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "queueing/mva_approx.h"
#include "queueing/mva_exact.h"
#include "queueing/mva_kernel.h"
#include "queueing/mva_overlap.h"

namespace mrperf {
namespace {

/// Equivalence classes of the grouped cells (tasks/class = T/8).
constexpr int kBenchGroups = 8;

/// Agreement bound for grouped vs per-task reference responses.
constexpr double kGroupedRelTol = 1e-8;

/// The bench-standard overlap problem: 4 nodes × (cpu, disk) centers,
/// tasks striped across nodes, dense θ = 0.8.
OverlapMvaProblem BuildOverlapProblem(int tasks) {
  OverlapMvaProblem p;
  for (int n = 0; n < 4; ++n) {
    const std::string id = std::to_string(n);
    p.centers.push_back({"cpu" + id, CenterType::kQueueing, 4});
    p.centers.push_back({"disk" + id, CenterType::kQueueing, 1});
  }
  const size_t K = p.centers.size();
  for (int t = 0; t < tasks; ++t) {
    OverlapTask task;
    task.demand.assign(K, 0.0);
    task.demand[(t % 4) * 2] = 8.0;
    task.demand[(t % 4) * 2 + 1] = 2.0;
    p.tasks.push_back(task);
  }
  p.overlap.assign(tasks, std::vector<double>(tasks, 0.8));
  for (int i = 0; i < tasks; ++i) p.overlap[i][i] = 0.0;
  return p;
}

/// The same network group-compressed: `groups` classes striped across
/// the 4 nodes with `tasks / groups` members each, homogeneous θ = 0.8
/// (intra and inter) — the structure the timeline's task waves produce.
GroupedOverlapMvaProblem BuildGroupedProblem(int tasks, int groups) {
  GroupedOverlapMvaProblem p;
  for (int n = 0; n < 4; ++n) {
    const std::string id = std::to_string(n);
    p.centers.push_back({"cpu" + id, CenterType::kQueueing, 4});
    p.centers.push_back({"disk" + id, CenterType::kQueueing, 1});
  }
  const size_t K = p.centers.size();
  const int per_group = tasks / groups;
  for (int g = 0; g < groups; ++g) {
    OverlapTaskGroup group;
    group.count = per_group;
    group.demand.assign(K, 0.0);
    group.demand[(g % 4) * 2] = 8.0;
    group.demand[(g % 4) * 2 + 1] = 2.0;
    p.groups.push_back(std::move(group));
    for (int c = 0; c < per_group; ++c) p.task_group.push_back(g);
  }
  p.overlap.assign(groups, std::vector<double>(groups, 0.8));
  return p;
}

ClosedNetwork BuildClosedNetwork(int population) {
  ClosedNetwork net;
  net.centers = {{"cpu", CenterType::kQueueing, 4},
                 {"net", CenterType::kQueueing, 1}};
  net.demand = {{8.0, 0.0}, {1.0, 3.0}, {4.0, 0.5}};
  net.population = {population, population, population};
  net.think_time = {0.0, 0.0, 0.0};
  return net;
}

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Times `fn` as the MEDIAN seconds/call over 5 samples that together
/// run for at least `min_ms` (medians resist scheduler noise, and the
/// JSON perf trajectory wants a robust statistic). `fn` returns false on
/// solver error, which aborts the bench.
template <typename Fn>
bool TimeIt(Fn&& fn, double min_ms, double* seconds_per_call) {
  // Warm-up (also populates reused scratch buffers).
  if (!fn()) return false;
  constexpr int kSamples = 5;
  double samples[kSamples];
  const double budget_ms = min_ms / kSamples;
  for (int s = 0; s < kSamples; ++s) {
    int calls = 0;
    const double start = NowSeconds();
    double elapsed = 0.0;
    do {
      if (!fn()) return false;
      ++calls;
      elapsed = NowSeconds() - start;
    } while (elapsed * 1000.0 < budget_ms);
    samples[s] = elapsed / calls;
  }
  std::sort(samples, samples + kSamples);
  *seconds_per_call = samples[kSamples / 2];
  return true;
}

bool BitwiseEqual(const OverlapMvaSolution& a, const OverlapMvaSolution& b) {
  if (a.response != b.response || a.iterations != b.iterations) return false;
  return a.residence == b.residence;
}

/// Relative agreement check for the grouped path against a per-task
/// reference solve of the same compressed problem.
bool WithinRelTol(const OverlapMvaSolution& ref,
                  const OverlapMvaSolution& got) {
  if (ref.response.size() != got.response.size()) return false;
  for (size_t i = 0; i < ref.response.size(); ++i) {
    const double tol =
        kGroupedRelTol * std::max(1.0, std::abs(ref.response[i]));
    if (std::abs(ref.response[i] - got.response[i]) > tol) return false;
  }
  return true;
}

struct OverlapRow {
  int tasks = 0;
  int groups = 0;
  double scalar_us = 0.0;
  double blocked_us = 0.0;
  double grouped_us = 0.0;
  int iterations = 0;
  /// Fixed-point iterations on the perturbed-neighbor problem (demands
  /// scaled 5%), solved from the uniform init vs warm-started with the
  /// base problem's converged residence matrix.
  int neighbor_cold_iters = 0;
  int neighbor_warm_iters = 0;
  double blocked_speedup() const { return scalar_us / blocked_us; }
  double grouped_speedup() const { return blocked_us / grouped_us; }
};

/// Times scalar vs blocked vs grouped on one problem size; verifies the
/// per-task paths are bit-for-bit identical and the grouped path agrees
/// with its per-task reference within tolerance. Returns false on
/// failure.
bool RunOverlapCell(int tasks, double min_ms, OverlapRow* row) {
  const OverlapMvaProblem p = BuildOverlapProblem(tasks);
  const int groups = std::min(kBenchGroups, tasks);
  const GroupedOverlapMvaProblem gp = BuildGroupedProblem(tasks, groups);
  MvaKernelScratch scratch;

  OverlapMvaOptions scalar_opts;
  scalar_opts.kernel = MvaKernelPath::kScalar;
  OverlapMvaOptions blocked_opts;
  blocked_opts.kernel = MvaKernelPath::kBlocked;
  OverlapMvaOptions grouped_opts;
  grouped_opts.kernel = MvaKernelPath::kGrouped;

  auto scalar_sol = SolveOverlapMva(p, scalar_opts, &scratch);
  auto blocked_sol = SolveOverlapMva(p, blocked_opts, &scratch);
  if (!scalar_sol.ok() || !blocked_sol.ok()) {
    std::fprintf(stderr, "overlap MVA failed at T=%d: %s\n", tasks,
                 (!scalar_sol.ok() ? scalar_sol.status() : blocked_sol.status())
                     .ToString()
                     .c_str());
    return false;
  }
  if (!BitwiseEqual(*scalar_sol, *blocked_sol)) {
    std::fprintf(stderr,
                 "kernel paths disagree at T=%d (must be bit-identical)\n",
                 tasks);
    return false;
  }
  // Grouped path vs its per-task reference on the compressed problem.
  auto grouped_ref = SolveGroupedOverlapMva(gp, scalar_opts, &scratch);
  auto grouped_sol = SolveGroupedOverlapMva(gp, grouped_opts, &scratch);
  if (!grouped_ref.ok() || !grouped_sol.ok()) {
    std::fprintf(
        stderr, "grouped overlap MVA failed at T=%d/G=%d: %s\n", tasks,
        groups,
        (!grouped_ref.ok() ? grouped_ref.status() : grouped_sol.status())
            .ToString()
            .c_str());
    return false;
  }
  if (!WithinRelTol(*grouped_ref, *grouped_sol)) {
    std::fprintf(stderr,
                 "grouped path outside tolerance at T=%d/G=%d "
                 "(must match the per-task reference)\n",
                 tasks, groups);
    return false;
  }

  // Warm-start cell: the same network with demands scaled 1% — the
  // neighboring-sweep-point shape — solved cold vs seeded with the base
  // problem's fixed point. The warm solve must land on the same fixed
  // point and do so in strictly fewer damped sweeps.
  OverlapMvaProblem neighbor = BuildOverlapProblem(tasks);
  for (OverlapTask& task : neighbor.tasks) {
    for (double& d : task.demand) d *= 1.01;
  }
  auto neighbor_cold = SolveOverlapMva(neighbor, blocked_opts, &scratch);
  const FlatMatrix seed = SolutionResidenceMatrix(*blocked_sol);
  OverlapMvaOptions warm_opts = blocked_opts;
  warm_opts.initial_residence = &seed;
  auto neighbor_warm = SolveOverlapMva(neighbor, warm_opts, &scratch);
  if (!neighbor_cold.ok() || !neighbor_warm.ok()) {
    std::fprintf(
        stderr, "neighbor overlap MVA failed at T=%d: %s\n", tasks,
        (!neighbor_cold.ok() ? neighbor_cold.status() : neighbor_warm.status())
            .ToString()
            .c_str());
    return false;
  }
  if (!neighbor_warm->warm_started) {
    std::fprintf(stderr, "warm start was not taken at T=%d\n", tasks);
    return false;
  }
  if (!WithinRelTol(*neighbor_cold, *neighbor_warm)) {
    std::fprintf(stderr,
                 "warm-started solve outside tolerance at T=%d (must reach "
                 "the cold fixed point)\n",
                 tasks);
    return false;
  }
  if (neighbor_warm->iterations >= neighbor_cold->iterations) {
    std::fprintf(stderr,
                 "warm start did not reduce iterations at T=%d "
                 "(warm %d >= cold %d)\n",
                 tasks, neighbor_warm->iterations, neighbor_cold->iterations);
    return false;
  }

  row->tasks = tasks;
  row->groups = groups;
  row->iterations = scalar_sol->iterations;
  row->neighbor_cold_iters = neighbor_cold->iterations;
  row->neighbor_warm_iters = neighbor_warm->iterations;
  const auto solve_scalar = [&] {
    return SolveOverlapMva(p, scalar_opts, &scratch).ok();
  };
  const auto solve_blocked = [&] {
    return SolveOverlapMva(p, blocked_opts, &scratch).ok();
  };
  const auto solve_grouped = [&] {
    return SolveGroupedOverlapMva(gp, grouped_opts, &scratch).ok();
  };
  double sec = 0.0;
  if (!TimeIt(solve_scalar, min_ms, &sec)) return false;
  row->scalar_us = sec * 1e6;
  if (!TimeIt(solve_blocked, min_ms, &sec)) return false;
  row->blocked_us = sec * 1e6;
  if (!TimeIt(solve_grouped, min_ms, &sec)) return false;
  row->grouped_us = sec * 1e6;
  return true;
}

/// Writes the overlap rows as a JSON array (CI uploads this as the
/// BENCH_mva_scaling.json artifact; %.17g doubles round-trip exactly).
bool WriteScalingJson(const std::string& path,
                      const std::vector<OverlapRow>& rows) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  std::string out = "[";
  char line[512];
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverlapRow& r = rows[i];
    std::snprintf(
        line, sizeof(line),
        "%s\n  {\"tasks\": %d, \"groups\": %d, \"tasks_per_group\": %d, "
        "\"iterations\": %d, \"neighbor_cold_iterations\": %d, "
        "\"neighbor_warm_iterations\": %d, "
        "\"scalar_ns\": %.17g, \"blocked_ns\": %.17g, "
        "\"grouped_ns\": %.17g, \"blocked_speedup\": %.17g, "
        "\"grouped_speedup_vs_blocked\": %.17g}",
        i == 0 ? "" : ",", r.tasks, r.groups, r.tasks / r.groups,
        r.iterations, r.neighbor_cold_iters, r.neighbor_warm_iters,
        r.scalar_us * 1e3, r.blocked_us * 1e3,
        r.grouped_us * 1e3, r.blocked_speedup(), r.grouped_speedup());
    out += line;
  }
  out += rows.empty() ? "]\n" : "\n]\n";
  file << out;
  file.flush();
  if (!file) {
    std::fprintf(stderr, "failed writing '%s'\n", path.c_str());
    return false;
  }
  std::printf("wrote %zu rows to %s\n", rows.size(), path.c_str());
  return true;
}

bool RunClosedNetworkSweep(const std::vector<int>& populations,
                           double min_ms) {
  std::printf("\n%-12s | %12s | %12s\n", "population", "exact us",
              "approx us");
  for (int pop : populations) {
    const ClosedNetwork net = BuildClosedNetwork(pop);
    const auto solve_exact = [&] { return SolveMvaExact(net).ok(); };
    const auto solve_approx = [&] { return SolveMvaApprox(net).ok(); };
    // Cheap feasibility probe (the solver's own ∏(N_c+1) guard against
    // its default cap) instead of a discarded full solve: at N=256 one
    // exact solve walks ~1.7e7 states.
    size_t states = 1;
    bool exact_feasible = true;
    for (int class_pop : net.population) {
      states *= static_cast<size_t>(class_pop) + 1;
      if (states > kExactMvaDefaultMaxStates) {
        exact_feasible = false;
        break;
      }
    }
    double exact_sec = 0.0;
    if (exact_feasible && !TimeIt(solve_exact, min_ms, &exact_sec)) {
      std::fprintf(stderr, "exact MVA failed at N=%d\n", pop);
      return false;
    }
    double approx_sec = 0.0;
    if (!TimeIt(solve_approx, min_ms, &approx_sec)) {
      std::fprintf(stderr, "approximate MVA failed at N=%d\n", pop);
      return false;
    }
    if (exact_feasible) {
      std::printf("%-12d | %12.2f | %12.2f\n", pop, exact_sec * 1e6,
                  approx_sec * 1e6);
    } else {
      std::printf("%-12d | %12s | %12.2f\n", pop, "(state blowup)",
                  approx_sec * 1e6);
    }
  }
  return true;
}

int Run(bool smoke, double min_ms, int max_tasks,
        const std::string& json_path) {
  std::vector<int> task_counts;
  if (smoke) {
    task_counts = {8, 64};
  } else {
    for (int t = 8; t <= max_tasks; t *= 2) task_counts.push_back(t);
  }
  if (task_counts.empty()) {
    // Guard the success sentinel: a grid that runs zero cells (e.g.
    // --max-tasks below 8 or unparsable) must not read as a passed gate.
    std::fprintf(stderr, "no overlap-MVA cells to run (max_tasks=%d)\n",
                 max_tasks);
    return 2;
  }

  std::printf("overlap-MVA kernel scaling (%s)\n",
              smoke ? "smoke grid" : "full grid");
  std::printf("%-8s | %6s | %12s | %12s | %12s | %8s | %8s | %6s | %7s | "
              "%7s\n",
              "tasks", "groups", "scalar us", "blocked us", "grouped us",
              "blk spd", "grp spd", "iters", "nbr cold", "nbr warm");
  bool speedup_ok = true;
  std::vector<OverlapRow> rows;
  for (int tasks : task_counts) {
    OverlapRow row;
    if (!RunOverlapCell(tasks, min_ms, &row)) return 1;
    std::printf("%-8d | %6d | %12.2f | %12.2f | %12.2f | %7.2fx | %7.2fx "
                "| %6d | %7d | %7d\n",
                row.tasks, row.groups, row.scalar_us, row.blocked_us,
                row.grouped_us, row.blocked_speedup(), row.grouped_speedup(),
                row.iterations, row.neighbor_cold_iters,
                row.neighbor_warm_iters);
    if (tasks >= 64 && row.blocked_speedup() < 2.0) speedup_ok = false;
    if (tasks >= 256 && row.grouped_speedup() < 5.0) speedup_ok = false;
    rows.push_back(row);
  }
  if (!json_path.empty() && !WriteScalingJson(json_path, rows)) return 1;
  const std::vector<int> populations =
      smoke ? std::vector<int>{4, 16}
            : std::vector<int>{2, 4, 8, 16, 32, 64, 128, 256, 512};
  if (!RunClosedNetworkSweep(populations, min_ms)) return 1;
  if (!smoke && !speedup_ok) {
    // Informational outside CI: the smoke gate only fails on solver
    // errors, since shared runners make wall-clock ratios noisy.
    std::fprintf(stderr,
                 "note: blocked speedup below 2x at T >= 64 or grouped "
                 "speedup below 5x at T >= 256 on this run\n");
  }
  std::printf(
      "\nall solver statuses OK; per-task paths bit-identical; grouped "
      "path within %g of reference; warm starts reduced neighbor "
      "iterations on every row\n",
      kGroupedRelTol);
  return 0;
}

}  // namespace
}  // namespace mrperf

int main(int argc, char** argv) {
  mrperf::bench::BenchArgs args(argc, argv);
  const bool smoke = args.Smoke();
  double min_ms = args.DoubleFlag("--min-ms", 0.0);  // 0 = mode default
  const int max_tasks = args.IntFlag("--max-tasks", 256);
  const std::string json_path = args.JsonOutPath();
  if (!args.Validate()) {
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--min-ms=N] [--max-tasks=T] "
                 "[--json-out=PATH]\n",
                 argv[0]);
    return 2;
  }
  // An explicit --min-ms wins regardless of flag order.
  if (min_ms <= 0.0) min_ms = smoke ? 20.0 : 200.0;
  return mrperf::Run(smoke, min_ms, max_tasks, json_path);
}
