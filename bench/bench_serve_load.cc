/// Closed-loop load generator and acceptance gate for predictd, the
/// online prediction daemon (src/serve/). Spawns a real predictd child
/// process, then drives four phases over TCP:
///
///  1. **Determinism gate.** A mixed scenario batch (schedulers,
///     profiles, heterogeneous clusters, model-only) is served and every
///     response must be byte-identical to an offline SweepRunner
///     evaluation of the same request — the serving analogue of
///     bench_scenario_sweep --smoke. Holds at any worker count because
///     request seeds never depend on batch composition.
///  2. **Coalescing gate.** A pipelined duplicate burst must be served
///     with fewer evaluations than requests (in-flight coalescing) and a
///     nonzero MVA-cache hit rate.
///  3. **Load phase.** Closed-loop clients measure end-to-end latency;
///     p50/p95/p99 + throughput go to BENCH_serve_load.json for the CI
///     perf trajectory. Also checks malformed lines get structured
///     errors without dropping the connection.
///  4. **Drain gate.** Requests are admitted, SIGTERM is sent, and every
///     admitted request must still receive its response before the child
///     exits 0.
///  5. **Contention gate.** In-process: 8 threads hammer hot keys of a
///     prewarmed single-mutex MvaSolveCache and a 16-shard
///     ShardedSolveCache (best-of-3 each); the sharded cache must be
///     strictly faster — the lock-splitting claim measured directly.
///     Enforced only on >= 2 hardware threads: on a single-CPU box no
///     two lock holders ever run in parallel, so lock splitting cannot
///     win wall-clock there (the column is still measured and recorded).
///  6. **Warm-restart gate.** A fresh predictd runs with --cache-file,
///     serves distinct model-only predicts, and is SIGTERMed (writing a
///     checkpoint on drain). A second predictd recovering that file must
///     report the recovery in /stats, hit the cache on its first
///     request, and answer every replayed request byte-identically.
///  7. **C10k gate.** A fresh predictd (1 worker, 2 event-loop threads)
///     holds >= 1000 idle connections while 64 active clients pipeline
///     bursts on top: every response ordered, served on the fixed loop
///     budget (event_loop_threads in /stats must not grow).
///  8. **QoS gate.** Bulk clients saturate the queue with distinct
///     evaluations while an interactive client interleaves requests:
///     server-side interactive p99 must beat bulk p99. Then requests
///     with deadline_ms=1 behind a parked backlog must each get a
///     structured answer — deadline_exceeded is never silently dropped
///     and the stats counter matches the responses observed.
///  9. **Metrics gate.** GET /metrics over the same port must parse as
///     valid Prometheus text exposition (ValidatePrometheusText) and
///     carry the per-priority latency histogram.
///
/// Flags: --predictd=PATH (default ./predictd), --threads=N (server
/// workers, default 4), --connections=C (default 4), --requests=M per
/// connection in the load phase (default 10), --json-out=PATH, --smoke
/// (CI sizing: fewer load requests).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/statistics.h"
#include "engine/sweep_format.h"
#include "engine/sweep_runner.h"
#include "figure_common.h"
#include "queueing/mva_cache.h"
#include "queueing/sharded_solve_cache.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/request.h"

namespace {

using namespace mrperf;
using SteadyClock = std::chrono::steady_clock;

struct ChildServer {
  pid_t pid = -1;
  int port = 0;
};

bool SpawnPredictd(const std::string& path, int threads, ChildServer* child,
                   const std::vector<std::string>& extra_args = {}) {
  int out_pipe[2];
  if (pipe(out_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed: %s\n", std::strerror(errno));
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork() failed: %s\n", std::strerror(errno));
    return false;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    const std::string threads_flag = "--threads=" + std::to_string(threads);
    std::vector<char*> argv_exec;
    argv_exec.push_back(const_cast<char*>(path.c_str()));
    argv_exec.push_back(const_cast<char*>("--port=0"));
    argv_exec.push_back(const_cast<char*>(threads_flag.c_str()));
    for (const std::string& arg : extra_args) {
      argv_exec.push_back(const_cast<char*>(arg.c_str()));
    }
    argv_exec.push_back(nullptr);
    execv(path.c_str(), argv_exec.data());
    std::fprintf(stderr, "execv(%s) failed: %s\n", path.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(out_pipe[1]);
  // First stdout line announces the bound port.
  std::string line;
  char c;
  while (read(out_pipe[0], &c, 1) == 1 && c != '\n') line += c;
  close(out_pipe[0]);
  int port = 0;
  if (std::sscanf(line.c_str(), "predictd listening on 127.0.0.1:%d",
                  &port) != 1 ||
      port <= 0) {
    std::fprintf(stderr, "unexpected predictd banner: '%s'\n",
                 line.c_str());
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return false;
  }
  child->pid = pid;
  child->port = port;
  return true;
}

void KillChild(ChildServer* child) {
  if (child->pid > 0) {
    kill(child->pid, SIGKILL);
    waitpid(child->pid, nullptr, 0);
    child->pid = -1;
  }
}

/// Extracts stats.<key> from a stats response line.
double StatsField(const std::string& response, const std::string& key) {
  Result<JsonValue> parsed = ParseJson(response);
  if (!parsed.ok()) return -1.0;
  const JsonValue* stats = parsed->Find("stats");
  if (stats == nullptr) return -1.0;
  const JsonValue* field = stats->Find(key);
  if (field == nullptr || !field->is_number()) return -1.0;
  return field->number_value();
}

double CacheField(const std::string& response, const std::string& key) {
  Result<JsonValue> parsed = ParseJson(response);
  if (!parsed.ok()) return -1.0;
  const JsonValue* stats = parsed->Find("stats");
  const JsonValue* cache = stats ? stats->Find("cache") : nullptr;
  const JsonValue* field = cache ? cache->Find(key) : nullptr;
  if (field == nullptr || !field->is_number()) return -1.0;
  return field->number_value();
}

/// The mixed scenario batch of phase 1/3: ids must stay unique.
std::vector<std::string> ScenarioMix() {
  return {
      R"({"id":"a0","kind":"predict","nodes":2,"input_gb":0.25,)"
      R"("jobs":1,"repetitions":2})",
      R"({"id":"a1","nodes":3,"input_gb":0.25,"jobs":2,"repetitions":2})",
      R"({"id":"a2","nodes":2,"input_gb":0.5,"repetitions":2,)"
      R"("profile":"terasort"})",
      R"({"id":"a3","nodes":2,"input_gb":0.25,"scheduler":"tetris",)"
      R"("repetitions":2})",
      R"({"id":"a4","nodes":4,"input_gb":0.25,"jobs":2,"repetitions":2,)"
      R"("cluster":"1x65536MBx12c+1x16384MBx4c"})",
      R"({"id":"a5","nodes":2,"input_gb":0.25,"model_only":true})",
      R"({"id":"a6","nodes":2,"input_gb":0.25,"repetitions":2,)"
      R"("reducers":4})",
      R"({"id":"a7","nodes":3,"input_gb":0.5,"repetitions":2,)"
      R"("profile":"grep","seed":777})",
  };
}

/// Offline oracle: evaluates the same requests through a local
/// SweepRunner and renders the byte-exact expected responses.
bool OfflineExpectedResponses(const std::vector<std::string>& lines,
                              std::vector<std::string>* expected) {
  const ExperimentOptions base = DefaultExperimentOptions();
  std::vector<SweepRunner::Task> tasks;
  std::vector<std::optional<std::string>> ids;
  for (const std::string& line : lines) {
    Result<ServeRequest> parsed = ParseServeRequest(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "offline parse of '%s' failed: %s\n",
                   line.c_str(), parsed.status().ToString().c_str());
      return false;
    }
    tasks.push_back(TaskForRequest(parsed->predict, base));
    ids.push_back(parsed->id);
  }
  SweepOptions sweep;
  sweep.experiment = base;
  SweepRunner runner(sweep);
  const SweepReport report = runner.RunTasks(tasks);
  if (!report.all_ok()) {
    std::fprintf(stderr, "offline evaluation failed: %s\n",
                 report.first_error().ToString().c_str());
    return false;
  }
  expected->clear();
  for (size_t i = 0; i < tasks.size(); ++i) {
    expected->push_back(MakePredictResponse(ids[i], *report.results[i]));
  }
  return true;
}

/// SIGTERMs `child` and reaps it; true iff it drained and exited 0.
bool StopChildGracefully(ChildServer* child) {
  if (child->pid <= 0) return false;
  kill(child->pid, SIGTERM);
  int wait_status = 0;
  const bool ok = waitpid(child->pid, &wait_status, 0) == child->pid &&
                  WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
  child->pid = -1;
  return ok;
}

/// Raises the soft fd limit to the hard cap: phase 7 holds a thousand
/// client sockets on the bench side alone.
void RaiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

/// Idle raw TCP connection for the C10k column: connects and parks.
class IdleConn {
 public:
  ~IdleConn() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

/// Extracts stats.latency_by_priority.<klass>.<key>.
double PriorityLatencyField(const std::string& response, const char* klass,
                            const char* key) {
  Result<JsonValue> parsed = ParseJson(response);
  if (!parsed.ok()) return -1.0;
  const JsonValue* stats = parsed->Find("stats");
  const JsonValue* by_priority =
      stats ? stats->Find("latency_by_priority") : nullptr;
  const JsonValue* klass_json =
      by_priority ? by_priority->Find(klass) : nullptr;
  const JsonValue* field = klass_json ? klass_json->Find(key) : nullptr;
  if (field == nullptr || !field->is_number()) return -1.0;
  return field->number_value();
}

/// Minimal HTTP GET against predictd's metrics endpoint; true on a
/// complete response, with the status line and body returned.
bool HttpGet(int port, const std::string& path, std::string* status_line,
             std::string* body) {
  PredictClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return false;
  if (!client.SendLine("GET " + path + " HTTP/1.1").ok()) return false;
  if (!client.SendLine("Host: localhost").ok()) return false;
  if (!client.SendLine("").ok()) return false;
  std::vector<std::string> lines;
  for (;;) {
    Result<std::string> line = client.ReadLine();
    if (!line.ok()) break;  // server closes after the one-shot response
    std::string text = *line;
    if (!text.empty() && text.back() == '\r') text.pop_back();
    lines.push_back(text);
  }
  if (lines.empty()) return false;
  *status_line = lines[0];
  size_t at = 1;
  while (at < lines.size() && !lines[at].empty()) ++at;  // headers
  ++at;                                                  // blank separator
  body->clear();
  for (; at < lines.size(); ++at) {
    *body += lines[at];
    *body += '\n';
  }
  return true;
}

/// Phase 5 measurement: `threads` workers each run `iters` hot-key
/// Lookups against `cache` (every key resident, so the loop is pure
/// lock + copy cost — the serving steady state). Returns wall seconds.
double HotKeyLookupSeconds(SolveCache& cache,
                           const std::vector<std::string>& keys, int threads,
                           int iters) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  const auto start = SteadyClock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, &keys, iters, t] {
      // Per-thread stride over the hot set: duplicate-heavy, all hits.
      size_t at = static_cast<size_t>(t) * 31;
      for (int i = 0; i < iters; ++i) {
        at += 7;
        if (!cache.Lookup(keys[at % keys.size()])) std::abort();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// Best-of-`rounds` wall time (minimum filters scheduler noise — the CI
/// runners share their cores).
double BestHotKeyLookupSeconds(SolveCache& cache,
                               const std::vector<std::string>& keys,
                               int threads, int iters, int rounds) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    best = std::min(best, HotKeyLookupSeconds(cache, keys, threads, iters));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  RaiseFdLimit();
  bench::BenchArgs args(argc, argv);
  const int threads = [&] {
    const int t = args.Threads();
    return t > 0 ? t : 4;
  }();
  const bool smoke = args.Smoke();
  const std::string predictd_path = args.StringFlag("--predictd",
                                                    "./predictd");
  const std::string json_out = args.JsonOutPath();
  const int connections = std::max(1, args.IntFlag("--connections", 4));
  const int requests_per_connection =
      std::max(1, args.IntFlag("--requests", smoke ? 5 : 10));
  if (!args.Validate()) return 2;

  ChildServer child;
  if (!SpawnPredictd(predictd_path, threads, &child)) return 1;
  std::printf("predictd up on port %d (pid %d, %d workers)\n", child.port,
              static_cast<int>(child.pid), threads);

  // ---- Phase 1: determinism gate --------------------------------------
  const std::vector<std::string> mix = ScenarioMix();
  std::vector<std::string> expected;
  if (!OfflineExpectedResponses(mix, &expected)) {
    KillChild(&child);
    return 1;
  }
  {
    PredictClient client;
    if (Status s = client.Connect("127.0.0.1", child.port); !s.ok()) {
      std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
      KillChild(&child);
      return 1;
    }
    for (const std::string& line : mix) client.SendLine(line);  // pipelined
    for (size_t i = 0; i < mix.size(); ++i) {
      Result<std::string> response = client.ReadLine();
      if (!response.ok() || *response != expected[i]) {
        std::fprintf(stderr,
                     "determinism gate FAILED for request %zu\n  sent: "
                     "%s\n  got:  %s\n  want: %s\n",
                     i, mix[i].c_str(),
                     response.ok() ? response->c_str()
                                   : response.status().ToString().c_str(),
                     expected[i].c_str());
        KillChild(&child);
        return 1;
      }
    }
  }
  std::printf("determinism: %zu served responses byte-identical to "
              "offline SweepRunner\n",
              mix.size());

  // ---- Phase 2: duplicate burst / coalescing gate ---------------------
  PredictClient stats_client;
  if (Status s = stats_client.Connect("127.0.0.1", child.port); !s.ok()) {
    std::fprintf(stderr, "stats connect: %s\n", s.ToString().c_str());
    KillChild(&child);
    return 1;
  }
  Result<std::string> stats_before =
      stats_client.Call(R"({"kind":"stats"})");
  if (!stats_before.ok()) {
    std::fprintf(stderr, "stats call failed\n");
    KillChild(&child);
    return 1;
  }
  constexpr int kBurst = 32;
  {
    PredictClient client;
    client.Connect("127.0.0.1", child.port);
    // Fresh point (not in phase 1), duplicated: coalescing, then cache.
    for (int i = 0; i < kBurst; ++i) {
      client.SendLine(R"({"id":"dup)" + std::to_string(i) +
                      R"(","nodes":3,"input_gb":0.25,"jobs":2,)"
                      R"("repetitions":2,"profile":"terasort"})");
    }
    std::string first_result;
    for (int i = 0; i < kBurst; ++i) {
      Result<std::string> response = client.ReadLine();
      if (!response.ok() ||
          response->find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "burst response %d failed\n", i);
        KillChild(&child);
        return 1;
      }
      // Identical result bytes for every duplicate, whatever its id.
      const size_t at = response->find("\"result\": ");
      const std::string result = response->substr(at);
      if (i == 0) {
        first_result = result;
      } else if (result != first_result) {
        std::fprintf(stderr, "burst responses diverged at %d\n", i);
        KillChild(&child);
        return 1;
      }
    }
  }
  Result<std::string> stats_after = stats_client.Call(R"({"kind":"stats"})");
  if (!stats_after.ok()) {
    KillChild(&child);
    return 1;
  }
  const double burst_requests = StatsField(*stats_after, "requests_total") -
                                StatsField(*stats_before, "requests_total");
  const double burst_evals =
      StatsField(*stats_after, "evaluations_total") -
      StatsField(*stats_before, "evaluations_total");
  const double cache_hit_rate = CacheField(*stats_after, "hit_rate");
  std::printf(
      "coalescing: %d duplicate requests -> %.0f evaluations "
      "(coalesced_total %.0f, cache hit rate %.3f)\n",
      kBurst, burst_evals, StatsField(*stats_after, "coalesced_total"),
      cache_hit_rate);
  if (burst_requests != kBurst || burst_evals >= kBurst ||
      burst_evals < 1.0) {
    std::fprintf(stderr,
                 "coalescing gate FAILED: %.0f requests, %.0f "
                 "evaluations\n",
                 burst_requests, burst_evals);
    KillChild(&child);
    return 1;
  }
  if (!(cache_hit_rate > 0.0)) {
    std::fprintf(stderr, "cache gate FAILED: hit rate %.3f\n",
                 cache_hit_rate);
    KillChild(&child);
    return 1;
  }

  // ---- Phase 3: closed-loop load + malformed-line check ---------------
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  {
    std::vector<std::thread> clients;
    std::vector<std::vector<double>> per_client(
        static_cast<size_t>(connections));
    const auto start = SteadyClock::now();
    for (int c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        PredictClient client;
        if (!client.Connect("127.0.0.1", child.port).ok()) return;
        for (int r = 0; r < requests_per_connection; ++r) {
          const std::string& line =
              mix[static_cast<size_t>(c + r) % mix.size()];
          const auto t0 = SteadyClock::now();
          Result<std::string> response = client.Call(line);
          if (!response.ok()) return;
          per_client[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(
                  SteadyClock::now() - t0)
                  .count());
        }
      });
    }
    for (auto& t : clients) t.join();
    wall_seconds =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    for (const auto& v : per_client) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  const size_t load_total =
      static_cast<size_t>(connections) *
      static_cast<size_t>(requests_per_connection);
  if (latencies_ms.size() != load_total) {
    std::fprintf(stderr, "load phase FAILED: %zu/%zu responses\n",
                 latencies_ms.size(), load_total);
    KillChild(&child);
    return 1;
  }
  const double p50 = Percentile(latencies_ms, 50).ValueOr(0);
  const double p95 = Percentile(latencies_ms, 95).ValueOr(0);
  const double p99 = Percentile(latencies_ms, 99).ValueOr(0);
  const double throughput =
      wall_seconds > 0 ? static_cast<double>(load_total) / wall_seconds : 0;
  std::printf(
      "load: %zu requests over %d connections in %.2fs -> %.1f req/s, "
      "latency p50/p95/p99 = %.1f/%.1f/%.1f ms\n",
      load_total, connections, wall_seconds, throughput, p50, p95, p99);

  {
    // Malformed lines are answered, not disconnected.
    PredictClient client;
    client.Connect("127.0.0.1", child.port);
    Result<std::string> garbage = client.Call("this is not json");
    if (!garbage.ok() ||
        garbage->find("\"code\": \"parse_error\"") == std::string::npos) {
      std::fprintf(stderr, "malformed-line check FAILED\n");
      KillChild(&child);
      return 1;
    }
    Result<std::string> still_alive = client.Call(mix[0]);
    if (!still_alive.ok() ||
        still_alive->find("\"ok\": true") == std::string::npos) {
      std::fprintf(stderr, "connection did not survive malformed line\n");
      KillChild(&child);
      return 1;
    }
  }

  // ---- Phase 4: SIGTERM drain gate ------------------------------------
  constexpr int kDrainRequests = 8;
  {
    const double admitted_before =
        StatsField(*stats_client.Call(R"({"kind":"stats"})"), /*key=*/
                   "requests_total");
    PredictClient client;
    client.Connect("127.0.0.1", child.port);
    for (int i = 0; i < kDrainRequests; ++i) {
      // Fresh points the cache has not seen, so the drain has real work.
      client.SendLine(R"({"id":"d)" + std::to_string(i) +
                      R"(","nodes":)" + std::to_string(5 + i % 4) +
                      R"(,"input_gb":0.25,"jobs":3,"repetitions":2,)"
                      R"("profile":"inverted-index"})");
    }
    // Wait until all are admitted (visible in requests_total), then pull
    // the plug: the drain must still answer every one of them.
    for (int spin = 0;; ++spin) {
      const double admitted = StatsField(
          *stats_client.Call(R"({"kind":"stats"})"), "requests_total");
      if (admitted - admitted_before >= kDrainRequests) break;
      if (spin > 2000) {
        std::fprintf(stderr, "drain gate: requests never admitted\n");
        KillChild(&child);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    kill(child.pid, SIGTERM);
    for (int i = 0; i < kDrainRequests; ++i) {
      Result<std::string> response = client.ReadLine();
      if (!response.ok() ||
          response->find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "drain gate FAILED: response %d missing "
                             "after SIGTERM (%s)\n",
                     i,
                     response.ok()
                         ? response->c_str()
                         : response.status().ToString().c_str());
        KillChild(&child);
        return 1;
      }
    }
    // After the drain the server closes the session.
    Result<std::string> eof = client.ReadLine();
    if (eof.ok()) {
      std::fprintf(stderr, "expected EOF after drain, got: %s\n",
                   eof->c_str());
      KillChild(&child);
      return 1;
    }
  }
  int wait_status = 0;
  if (waitpid(child.pid, &wait_status, 0) != child.pid ||
      !WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    std::fprintf(stderr, "predictd did not exit cleanly (status %d)\n",
                 wait_status);
    return 1;
  }
  child.pid = -1;
  std::printf("drain: %d admitted requests answered after SIGTERM, "
              "clean exit\n",
              kDrainRequests);

  // ---- Phase 5: shard-contention gate (in-process) --------------------
  constexpr int kContentionThreads = 8;
  double single_ms = 0.0;
  double sharded_ms = 0.0;
  {
    // A hot working set standing in for the serving steady state: every
    // lookup hits, so the measured cost is the shard lock plus the
    // solution copy taken under it. Both caches hold identical entries.
    OverlapMvaSolution payload;
    payload.residence.assign(4, std::vector<double>(4, 0.125));
    payload.response.assign(4, 0.5);
    payload.iterations = 3;
    std::vector<std::string> keys;
    for (int i = 0; i < 64; ++i) {
      keys.push_back("contention-hot-key-" + std::to_string(i));
    }
    MvaSolveCache single_cache(4096);
    ShardedSolveCache sharded_cache(16, 4096);
    for (const std::string& key : keys) {
      single_cache.Insert(key, payload);
      sharded_cache.Insert(key, payload);
    }
    const int iters = smoke ? 50000 : 200000;
    constexpr int kRounds = 3;
    single_ms = 1e3 * BestHotKeyLookupSeconds(single_cache, keys,
                                              kContentionThreads, iters,
                                              kRounds);
    sharded_ms = 1e3 * BestHotKeyLookupSeconds(sharded_cache, keys,
                                               kContentionThreads, iters,
                                               kRounds);
    std::printf(
        "contention: %d threads x %d hot lookups -> single-mutex %.1f ms, "
        "%d shards %.1f ms (%.2fx)\n",
        kContentionThreads, iters, single_ms, sharded_cache.shard_count(),
        sharded_ms, sharded_ms > 0 ? single_ms / sharded_ms : 0.0);
    const unsigned hw_threads = std::thread::hardware_concurrency();
    if (hw_threads >= 2) {
      if (!(sharded_ms < single_ms)) {
        std::fprintf(stderr,
                     "contention gate FAILED: sharded cache (%.1f ms) not "
                     "faster than single mutex (%.1f ms) at %d threads\n",
                     sharded_ms, single_ms, kContentionThreads);
        return 1;
      }
    } else {
      // One CPU: lock holders never overlap in time, so splitting the
      // lock can only add hash overhead. Measured, recorded, not gated.
      std::printf(
          "contention gate skipped: %u hardware thread(s) cannot exhibit "
          "lock contention\n",
          hw_threads);
    }
  }

  // ---- Phase 6: warm-restart gate -------------------------------------
  const std::string cache_file =
      "/tmp/bench_serve_cache_" + std::to_string(getpid()) + ".ckpt";
  constexpr int kWarmRequests = 6;
  double recovered_entries = 0.0;
  bool warm_byte_identical = true;
  {
    const std::vector<std::string> cache_args = {
        "--cache-shards=8", "--cache-file=" + cache_file};
    // First life: serve distinct model-only predicts, then drain — the
    // drain writes the checkpoint.
    std::vector<std::string> warm_requests;
    for (int i = 0; i < kWarmRequests; ++i) {
      warm_requests.push_back(R"({"id":"w)" + std::to_string(i) +
                              R"(","nodes":)" + std::to_string(2 + i) +
                              R"(,"input_gb":0.25,"model_only":true})");
    }
    ChildServer warm_child;
    if (!SpawnPredictd(predictd_path, threads, &warm_child, cache_args)) {
      return 1;
    }
    std::vector<std::string> first_responses;
    {
      PredictClient client;
      if (!client.Connect("127.0.0.1", warm_child.port).ok()) {
        KillChild(&warm_child);
        return 1;
      }
      for (const std::string& line : warm_requests) {
        Result<std::string> response = client.Call(line);
        if (!response.ok() ||
            response->find("\"ok\": true") == std::string::npos) {
          std::fprintf(stderr, "warm-restart: first-life request failed\n");
          KillChild(&warm_child);
          return 1;
        }
        first_responses.push_back(*response);
      }
    }
    if (!StopChildGracefully(&warm_child)) {
      std::fprintf(stderr, "warm-restart: first predictd did not exit 0\n");
      return 1;
    }
    std::FILE* ckpt = std::fopen(cache_file.c_str(), "rb");
    if (ckpt == nullptr) {
      std::fprintf(stderr, "warm-restart gate FAILED: no checkpoint at %s\n",
                   cache_file.c_str());
      return 1;
    }
    std::fclose(ckpt);

    // Second life: recover the checkpoint, then replay every request.
    if (!SpawnPredictd(predictd_path, threads, &warm_child, cache_args)) {
      std::remove(cache_file.c_str());
      return 1;
    }
    PredictClient client;
    if (!client.Connect("127.0.0.1", warm_child.port).ok()) {
      KillChild(&warm_child);
      std::remove(cache_file.c_str());
      return 1;
    }
    Result<std::string> warm_stats = client.Call(R"({"kind":"stats"})");
    const double recoveries =
        warm_stats.ok() ? CacheField(*warm_stats, "recoveries") : -1.0;
    recovered_entries =
        warm_stats.ok() ? CacheField(*warm_stats, "recovered_entries") : -1.0;
    if (recoveries != 1.0 || !(recovered_entries > 0.0)) {
      std::fprintf(stderr,
                   "warm-restart gate FAILED: recoveries %.0f, "
                   "recovered_entries %.0f\n",
                   recoveries, recovered_entries);
      KillChild(&warm_child);
      std::remove(cache_file.c_str());
      return 1;
    }
    for (int i = 0; i < kWarmRequests; ++i) {
      Result<std::string> response = client.Call(warm_requests[
          static_cast<size_t>(i)]);
      if (!response.ok() ||
          *response != first_responses[static_cast<size_t>(i)]) {
        std::fprintf(stderr,
                     "warm-restart gate FAILED: replay %d not "
                     "byte-identical\n  got:  %s\n  want: %s\n",
                     i,
                     response.ok() ? response->c_str()
                                   : response.status().ToString().c_str(),
                     first_responses[static_cast<size_t>(i)].c_str());
        KillChild(&warm_child);
        std::remove(cache_file.c_str());
        return 1;
      }
    }
    // The replay must have been served from the recovered entries: the
    // fresh process starts at zero hits, and Recover() only inserts.
    Result<std::string> replay_stats = client.Call(R"({"kind":"stats"})");
    const double warm_hits =
        replay_stats.ok() ? CacheField(*replay_stats, "hits") : -1.0;
    if (!(warm_hits > 0.0)) {
      std::fprintf(stderr,
                   "warm-restart gate FAILED: no cache hits after replay "
                   "(%.0f)\n",
                   warm_hits);
      KillChild(&warm_child);
      std::remove(cache_file.c_str());
      return 1;
    }
    if (!StopChildGracefully(&warm_child)) {
      std::fprintf(stderr, "warm-restart: second predictd did not exit 0\n");
      std::remove(cache_file.c_str());
      return 1;
    }
    std::remove(cache_file.c_str());
    std::printf(
        "warm restart: %.0f entries recovered, %d replayed responses "
        "byte-identical, %.0f warm hits\n",
        recovered_entries, kWarmRequests, warm_hits);
  }

  // ---- Phases 7-9: C10k transport, QoS, metrics (fresh child) ---------
  constexpr int kIdleConnections = 1000;
  constexpr int kActiveClients = 64;
  constexpr int kDeadlineRequests = 6;
  const int active_requests = smoke ? 8 : 16;
  const size_t c10k_total = static_cast<size_t>(kActiveClients) *
                            static_cast<size_t>(active_requests);
  double c10k_wall = 0.0;
  double c10k_rps = 0.0;
  double bulk_p99 = 0.0;
  double interactive_p99 = 0.0;
  int deadline_hits = 0;
  {
    ChildServer qos_child;
    // One worker + a deliberately small batch: queue wait dominates, so
    // priority ordering and deadline expiry are visible in latency.
    if (!SpawnPredictd(predictd_path, /*threads=*/1, &qos_child,
                       {"--batch=2"})) {
      return 1;
    }
    PredictClient qos_stats;
    if (!qos_stats.Connect("127.0.0.1", qos_child.port).ok()) {
      KillChild(&qos_child);
      return 1;
    }

    // ---- Phase 7: >= 1k idle + 64 active pipelined clients ------------
    std::vector<IdleConn> idle(kIdleConnections);
    int idle_up = 0;
    for (int i = 0; i < kIdleConnections; ++i) {
      if (!idle[static_cast<size_t>(i)].Connect(qos_child.port)) break;
      ++idle_up;
    }
    if (idle_up != kIdleConnections) {
      std::fprintf(stderr, "c10k gate FAILED: only %d/%d idle connections\n",
                   idle_up, kIdleConnections);
      KillChild(&qos_child);
      return 1;
    }
    std::vector<int> active_ok(kActiveClients, 0);
    {
      std::vector<std::thread> actives;
      const auto start = SteadyClock::now();
      for (int c = 0; c < kActiveClients; ++c) {
        actives.emplace_back([&, c] {
          PredictClient client;
          if (!client.Connect("127.0.0.1", qos_child.port).ok()) return;
          for (int i = 0; i < active_requests; ++i) {
            const std::string id =
                "k" + std::to_string(c) + "-" + std::to_string(i);
            if (!client
                     .SendLine(R"({"id":")" + id + R"(","nodes":)" +
                               std::to_string(2 + i % 5) +
                               R"(,"input_gb":0.25,"model_only":true})")
                     .ok()) {
              return;
            }
          }
          for (int i = 0; i < active_requests; ++i) {
            Result<std::string> response = client.ReadLine();
            if (!response.ok()) return;
            const std::string want =
                "\"k" + std::to_string(c) + "-" + std::to_string(i) + "\"";
            if (response->find(want) == std::string::npos ||
                response->find("\"ok\": true") == std::string::npos) {
              return;  // out of order or failed: active_ok stays short
            }
            ++active_ok[static_cast<size_t>(c)];
          }
        });
      }
      for (std::thread& t : actives) t.join();
      c10k_wall = std::chrono::duration<double>(SteadyClock::now() - start)
                      .count();
    }
    for (int c = 0; c < kActiveClients; ++c) {
      if (active_ok[static_cast<size_t>(c)] != active_requests) {
        std::fprintf(stderr,
                     "c10k gate FAILED: client %d got %d/%d ordered "
                     "responses\n",
                     c, active_ok[static_cast<size_t>(c)], active_requests);
        KillChild(&qos_child);
        return 1;
      }
    }
    c10k_rps = c10k_wall > 0
                   ? static_cast<double>(c10k_total) / c10k_wall
                   : 0.0;
    Result<std::string> c10k_stats =
        qos_stats.Call(R"({"kind":"stats"})");
    if (!c10k_stats.ok()) {
      KillChild(&qos_child);
      return 1;
    }
    const double live_connections = StatsField(*c10k_stats, "connections");
    const double loop_threads =
        StatsField(*c10k_stats, "event_loop_threads");
    std::printf(
        "c10k: %d idle + %d active clients, %zu pipelined requests in "
        "%.2fs -> %.0f req/s on %.0f event-loop threads (%.0f live "
        "connections)\n",
        kIdleConnections, kActiveClients, c10k_total, c10k_wall, c10k_rps,
        loop_threads, live_connections);
    if (live_connections < kIdleConnections || loop_threads != 2.0) {
      std::fprintf(stderr,
                   "c10k gate FAILED: %.0f connections on %.0f loop "
                   "threads (want >= %d on a fixed budget of 2)\n",
                   live_connections, loop_threads, kIdleConnections);
      KillChild(&qos_child);
      return 1;
    }

    // ---- Phase 8a: interactive p99 beats bulk p99 under saturation ----
    constexpr int kBulkClients = 4;
    constexpr int kBulkPerClient = 12;
    constexpr int kInteractive = 8;
    {
      std::vector<std::thread> bulk_clients;
      std::vector<int> bulk_ok(kBulkClients, 0);
      for (int c = 0; c < kBulkClients; ++c) {
        bulk_clients.emplace_back([&, c] {
          PredictClient client;
          if (!client.Connect("127.0.0.1", qos_child.port).ok()) return;
          for (int i = 0; i < kBulkPerClient; ++i) {
            // Distinct seeds: no coalescing, every request a real
            // evaluation competing for the single worker.
            client.SendLine(
                R"({"id":"qb)" + std::to_string(c) + "-" +
                std::to_string(i) +
                R"(","nodes":3,"input_gb":0.5,"jobs":2,"repetitions":2,)"
                R"("seed":)" + std::to_string(1000 + c * 100 + i) + "}");
          }
          for (int i = 0; i < kBulkPerClient; ++i) {
            Result<std::string> response = client.ReadLine();
            if (!response.ok() ||
                response->find("\"ok\": true") == std::string::npos) {
              return;
            }
            ++bulk_ok[static_cast<size_t>(c)];
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      PredictClient interactive_client;
      if (!interactive_client.Connect("127.0.0.1", qos_child.port).ok()) {
        KillChild(&qos_child);
        return 1;
      }
      int interactive_ok = 0;
      for (int i = 0; i < kInteractive; ++i) {
        Result<std::string> response = interactive_client.Call(
            R"({"id":"qi)" + std::to_string(i) +
            R"(","nodes":3,"input_gb":0.5,"jobs":2,"repetitions":2,)"
            R"("seed":)" + std::to_string(9000 + i) +
            R"(,"priority":"interactive"})");
        if (response.ok() &&
            response->find("\"ok\": true") != std::string::npos) {
          ++interactive_ok;
        }
      }
      for (std::thread& t : bulk_clients) t.join();
      int bulk_answered = 0;
      for (int ok_count : bulk_ok) bulk_answered += ok_count;
      if (bulk_answered != kBulkClients * kBulkPerClient ||
          interactive_ok != kInteractive) {
        std::fprintf(stderr, "qos gate FAILED: %d/%d bulk, %d/%d "
                             "interactive responses\n",
                     bulk_answered, kBulkClients * kBulkPerClient,
                     interactive_ok, kInteractive);
        KillChild(&qos_child);
        return 1;
      }
    }
    Result<std::string> qos_snapshot =
        qos_stats.Call(R"({"kind":"stats"})");
    if (!qos_snapshot.ok()) {
      KillChild(&qos_child);
      return 1;
    }
    bulk_p99 = PriorityLatencyField(*qos_snapshot, "bulk", "p99");
    interactive_p99 =
        PriorityLatencyField(*qos_snapshot, "interactive", "p99");
    std::printf(
        "qos: saturated single worker -> bulk p99 %.1f ms, interactive "
        "p99 %.1f ms\n",
        bulk_p99, interactive_p99);
    if (!(interactive_p99 > 0.0) || !(bulk_p99 > 0.0) ||
        !(interactive_p99 < bulk_p99)) {
      std::fprintf(stderr,
                   "qos gate FAILED: interactive p99 %.1f ms not below "
                   "bulk p99 %.1f ms\n",
                   interactive_p99, bulk_p99);
      KillChild(&qos_child);
      return 1;
    }

    // ---- Phase 8b: tiny deadlines behind a parked backlog -------------
    {
      const double admitted_before =
          StatsField(*qos_stats.Call(R"({"kind":"stats"})"),
                     "requests_total");
      constexpr int kBacklog = 16;
      PredictClient backlog;
      if (!backlog.Connect("127.0.0.1", qos_child.port).ok()) {
        KillChild(&qos_child);
        return 1;
      }
      for (int i = 0; i < kBacklog; ++i) {
        backlog.SendLine(
            R"({"id":"bk)" + std::to_string(i) +
            R"(","nodes":3,"input_gb":0.5,"jobs":2,"repetitions":2,)"
            R"("seed":)" + std::to_string(5000 + i) + "}");
      }
      // Wait until the backlog is admitted so the deadline requests are
      // deterministically queued behind real work.
      for (int spin = 0;; ++spin) {
        const double admitted = StatsField(
            *qos_stats.Call(R"({"kind":"stats"})"), "requests_total");
        if (admitted - admitted_before >= kBacklog) break;
        if (spin > 2000) {
          std::fprintf(stderr, "deadline gate: backlog never admitted\n");
          KillChild(&qos_child);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      PredictClient deadline_client;
      if (!deadline_client.Connect("127.0.0.1", qos_child.port).ok()) {
        KillChild(&qos_child);
        return 1;
      }
      for (int i = 0; i < kDeadlineRequests; ++i) {
        deadline_client.SendLine(R"({"id":"dl)" + std::to_string(i) +
                                 R"(","nodes":)" + std::to_string(2 + i) +
                                 R"(,"input_gb":0.25,"model_only":true,)"
                                 R"("deadline_ms":1})");
      }
      for (int i = 0; i < kDeadlineRequests; ++i) {
        Result<std::string> response = deadline_client.ReadLine();
        if (!response.ok()) {
          std::fprintf(stderr,
                       "deadline gate FAILED: response %d dropped (%s)\n",
                       i, response.status().ToString().c_str());
          KillChild(&qos_child);
          return 1;
        }
        if (response->find("deadline_exceeded") != std::string::npos) {
          ++deadline_hits;
        } else if (response->find("\"ok\": true") == std::string::npos) {
          std::fprintf(stderr,
                       "deadline gate FAILED: response %d neither served "
                       "nor expired: %s\n",
                       i, response->c_str());
          KillChild(&qos_child);
          return 1;
        }
      }
      for (int i = 0; i < kBacklog; ++i) {
        Result<std::string> response = backlog.ReadLine();
        if (!response.ok() ||
            response->find("\"ok\": true") == std::string::npos) {
          std::fprintf(stderr, "deadline gate: backlog response %d lost\n",
                       i);
          KillChild(&qos_child);
          return 1;
        }
      }
      const double expired_total = StatsField(
          *qos_stats.Call(R"({"kind":"stats"})"), "deadline_exceeded_total");
      std::printf(
          "deadline: %d/%d answered with deadline_exceeded behind a "
          "%d-deep backlog (stats counter %.0f)\n",
          deadline_hits, kDeadlineRequests, kBacklog, expired_total);
      if (deadline_hits < 1 ||
          expired_total != static_cast<double>(deadline_hits)) {
        std::fprintf(stderr,
                     "deadline gate FAILED: %d expirations observed but "
                     "stats report %.0f\n",
                     deadline_hits, expired_total);
        KillChild(&qos_child);
        return 1;
      }
    }

    // ---- Phase 9: /metrics parses as Prometheus text exposition -------
    {
      std::string status_line;
      std::string body;
      if (!HttpGet(qos_child.port, "/metrics", &status_line, &body) ||
          status_line.find("200") == std::string::npos) {
        std::fprintf(stderr, "metrics gate FAILED: GET /metrics -> '%s'\n",
                     status_line.c_str());
        KillChild(&qos_child);
        return 1;
      }
      const Status valid = ValidatePrometheusText(body);
      if (!valid.ok()) {
        std::fprintf(stderr, "metrics gate FAILED: %s\n%s",
                     valid.ToString().c_str(), body.c_str());
        KillChild(&qos_child);
        return 1;
      }
      for (const char* needle :
           {"# TYPE predictd_request_latency_milliseconds histogram",
            "priority=\"interactive\"", "predictd_deadline_exceeded_total",
            "predictd_connections"}) {
        if (body.find(needle) == std::string::npos) {
          std::fprintf(stderr, "metrics gate FAILED: missing '%s'\n",
                       needle);
          KillChild(&qos_child);
          return 1;
        }
      }
      std::printf("metrics: %zu bytes of valid Prometheus exposition\n",
                  body.size());
    }

    // SIGTERM with the thousand idle connections still parked: the drain
    // must still terminate promptly and exit 0.
    if (!StopChildGracefully(&qos_child)) {
      std::fprintf(stderr,
                   "c10k drain gate FAILED: predictd did not exit 0 with "
                   "%d connections parked\n",
                   kIdleConnections);
      return 1;
    }
  }

  // ---- Persist the perf trajectory ------------------------------------
  if (!json_out.empty()) {
    std::string out = "{\"requests\": " + std::to_string(load_total) +
                      ", \"connections\": " + std::to_string(connections) +
                      ", \"threads\": " + std::to_string(threads) +
                      ", \"wall_seconds\": ";
    AppendJsonDouble(out, wall_seconds);
    out += ", \"throughput_rps\": ";
    AppendJsonDouble(out, throughput);
    out += ", \"latency_ms\": {\"p50\": ";
    AppendJsonDouble(out, p50);
    out += ", \"p95\": ";
    AppendJsonDouble(out, p95);
    out += ", \"p99\": ";
    AppendJsonDouble(out, p99);
    out += "}, \"burst\": {\"requests\": " + std::to_string(kBurst) +
           ", \"evaluations\": ";
    AppendJsonDouble(out, burst_evals);
    out += ", \"cache_hit_rate\": ";
    AppendJsonDouble(out, cache_hit_rate);
    out += "}, \"contention\": {\"threads\": " +
           std::to_string(kContentionThreads) + ", \"single_ms\": ";
    AppendJsonDouble(out, single_ms);
    out += ", \"sharded_ms\": ";
    AppendJsonDouble(out, sharded_ms);
    out += ", \"speedup\": ";
    AppendJsonDouble(out, sharded_ms > 0 ? single_ms / sharded_ms : 0.0);
    out += "}, \"warm_restart\": {\"recovered_entries\": ";
    AppendJsonDouble(out, recovered_entries);
    out += ", \"byte_identical\": ";
    out += warm_byte_identical ? "true" : "false";
    out += "}, \"c10k\": {\"idle_connections\": " +
           std::to_string(kIdleConnections) +
           ", \"active_clients\": " + std::to_string(kActiveClients) +
           ", \"requests\": " + std::to_string(c10k_total) +
           ", \"wall_seconds\": ";
    AppendJsonDouble(out, c10k_wall);
    out += ", \"throughput_rps\": ";
    AppendJsonDouble(out, c10k_rps);
    out += "}, \"qos\": {\"bulk_p99_ms\": ";
    AppendJsonDouble(out, bulk_p99);
    out += ", \"interactive_p99_ms\": ";
    AppendJsonDouble(out, interactive_p99);
    out += ", \"deadline_requests\": " + std::to_string(kDeadlineRequests) +
           ", \"deadline_exceeded\": " + std::to_string(deadline_hits) +
           ", \"metrics_valid\": true}}\n";
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }
  std::printf("bench_serve_load: all gates passed\n");
  return 0;
}
