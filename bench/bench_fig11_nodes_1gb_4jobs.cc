/// Reproduces Figure 11: job response time vs number of nodes (4, 6, 8)
/// for WordCount on 1 GB input, 4 concurrent jobs.

#include "figure_common.h"

int main(int argc, char** argv) {
  return mrperf::bench::RunNodeSweepFigure(
      "Figure 11: Input 1GB; #jobs 4", /*input_gb=*/1.0, /*num_jobs=*/4,
      /*block_size_bytes=*/128 * mrperf::kMiB,
      mrperf::bench::ThreadsFromArgs(argc, argv),
      mrperf::bench::OutPathFromArgs(argc, argv),
      mrperf::bench::JsonOutPathFromArgs(argc, argv));
}
