/// Reproduces Figure 11: job response time vs number of nodes (4, 6, 8)
/// for WordCount on 1 GB input, 4 concurrent jobs.

#include "figure_common.h"

int main(int argc, char** argv) {
  mrperf::bench::BenchArgs args(argc, argv);
  const int threads = args.Threads();
  const std::string out = args.OutPath();
  const std::string json_out = args.JsonOutPath();
  if (!args.Validate()) return 2;
  return mrperf::bench::RunNodeSweepFigure(
      "Figure 11: Input 1GB; #jobs 4", /*input_gb=*/1.0, /*num_jobs=*/4,
      /*block_size_bytes=*/128 * mrperf::kMiB,
      threads, out, json_out);
}
