/// \file figure_common.h
/// \brief Shared driver for the figure-reproduction benches: expands the
/// figure's parameter grid, fans it out through the engine's SweepRunner
/// (simulator "HadoopSetup" + both model estimators per point), and
/// prints the series of the corresponding paper figure.

#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "engine/sweep_csv.h"
#include "engine/sweep_grid.h"
#include "engine/sweep_json.h"
#include "engine/sweep_runner.h"
#include "experiments/experiment.h"
#include "experiments/report.h"

namespace mrperf::bench {

/// Persists sweep results to `out_path` when non-empty (sweep_csv.h);
/// returns false (after printing the error) when the write fails.
inline bool MaybeWriteCsv(const std::string& out_path,
                          const std::vector<ExperimentResult>& results) {
  if (out_path.empty()) return true;
  const Status status = WriteSweepCsv(out_path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  std::printf("wrote %zu rows to %s\n", results.size(), out_path.c_str());
  return true;
}

/// Persists sweep results as JSON when `json_path` is non-empty
/// (sweep_json.h); returns false (after printing) when the write fails.
inline bool MaybeWriteJson(const std::string& json_path,
                           const std::vector<ExperimentResult>& results) {
  if (json_path.empty()) return true;
  const Status status = WriteSweepJson(json_path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  std::printf("wrote %zu records to %s\n", results.size(),
              json_path.c_str());
  return true;
}

/// Runs a figure grid through the sweep engine and prints its table;
/// `out_path` / `json_path` optionally persist the series as CSV
/// (--out=) and JSON (--json-out=).
inline int RunFigureSweep(const std::string& title, const SweepGrid& grid,
                          const std::vector<double>& x_values,
                          const std::string& x_label, int num_threads,
                          const std::string& out_path = std::string(),
                          const std::string& json_path = std::string()) {
  SweepOptions sweep_opts;
  sweep_opts.num_threads = num_threads;
  sweep_opts.experiment = DefaultExperimentOptions();
  // Figures reproduce the calibrated measurement stream: the §5
  // calibration was fit at the default base seed, and simulated medians
  // are seed-sensitive. Parallelism stays byte-deterministic either way.
  sweep_opts.derive_point_seeds = false;
  SweepRunner runner(sweep_opts);

  SweepReport report = runner.Run(grid);
  if (!report.all_ok()) {
    const std::vector<ExperimentPoint> points = grid.Expand();
    for (size_t i = 0; i < report.results.size(); ++i) {
      if (!report.results[i].ok()) {
        std::fprintf(stderr, "experiment %s failed: %s\n",
                     PointLabel(points[i]).c_str(),
                     report.results[i].status().ToString().c_str());
      }
    }
    return 1;
  }
  const std::vector<ExperimentResult> results = report.values();
  PrintFigureTable(std::cout, title, x_label, x_values, results);
  PrintErrorSummary(std::cout, title + " — error summary",
                    SummarizeErrors(results));
  PrintSweepStats(std::cout, results.size(), report.threads_used,
                  report.wall_seconds, report.cache_stats.hits,
                  report.cache_stats.lookups());
  if (!MaybeWriteCsv(out_path, results)) return 1;
  if (!MaybeWriteJson(json_path, results)) return 1;
  return 0;
}

/// Runs a node sweep at fixed input size / job count (Figures 10-13, 15).
inline int RunNodeSweepFigure(const std::string& title, double input_gb,
                              int num_jobs, int64_t block_size_bytes,
                              int num_threads = 0,
                              const std::string& out_path = std::string(),
                              const std::string& json_path = std::string()) {
  const std::vector<int> nodes = {4, 6, 8};
  SweepGrid grid;
  grid.Nodes(nodes)
      .InputGigabytes({input_gb})
      .Jobs({num_jobs})
      .BlockSizes({block_size_bytes});
  return RunFigureSweep(title, grid,
                        std::vector<double>(nodes.begin(), nodes.end()),
                        "nodes", num_threads, out_path, json_path);
}

/// Runs a concurrency sweep at fixed nodes / input size (Figure 14).
inline int RunJobSweepFigure(const std::string& title, int nodes,
                             double input_gb, int num_threads = 0,
                             const std::string& out_path = std::string(),
                             const std::string& json_path = std::string()) {
  const std::vector<int> jobs = {1, 2, 3, 4};
  SweepGrid grid;
  grid.Nodes({nodes}).InputGigabytes({input_gb}).Jobs(jobs);
  return RunFigureSweep(title, grid,
                        std::vector<double>(jobs.begin(), jobs.end()),
                        "jobs", num_threads, out_path, json_path);
}

}  // namespace mrperf::bench
