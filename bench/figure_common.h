/// \file figure_common.h
/// \brief Shared driver for the figure-reproduction benches: runs the
/// simulator ("HadoopSetup") and both model estimators over one sweep and
/// prints the series of the corresponding paper figure.

#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/experiment.h"
#include "experiments/report.h"

namespace mrperf::bench {

/// Runs a node sweep at fixed input size / job count (Figures 10-13, 15).
inline int RunNodeSweepFigure(const std::string& title, double input_gb,
                              int num_jobs, int64_t block_size_bytes) {
  ExperimentOptions opts = DefaultExperimentOptions();
  std::vector<double> xs;
  std::vector<ExperimentResult> results;
  for (int nodes : {4, 6, 8}) {
    ExperimentPoint point;
    point.num_nodes = nodes;
    point.input_bytes = static_cast<int64_t>(input_gb * kGiB);
    point.num_jobs = num_jobs;
    point.block_size_bytes = block_size_bytes;
    auto r = RunExperiment(point, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    xs.push_back(nodes);
    results.push_back(*r);
  }
  PrintFigureTable(std::cout, title, "nodes", xs, results);
  PrintErrorSummary(std::cout, title + " — error summary",
                    SummarizeErrors(results));
  return 0;
}

/// Runs a concurrency sweep at fixed nodes / input size (Figure 14).
inline int RunJobSweepFigure(const std::string& title, int nodes,
                             double input_gb) {
  ExperimentOptions opts = DefaultExperimentOptions();
  std::vector<double> xs;
  std::vector<ExperimentResult> results;
  for (int jobs : {1, 2, 3, 4}) {
    ExperimentPoint point;
    point.num_nodes = nodes;
    point.input_bytes = static_cast<int64_t>(input_gb * kGiB);
    point.num_jobs = jobs;
    auto r = RunExperiment(point, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    xs.push_back(jobs);
    results.push_back(*r);
  }
  PrintFigureTable(std::cout, title, "jobs", xs, results);
  PrintErrorSummary(std::cout, title + " — error summary",
                    SummarizeErrors(results));
  return 0;
}

}  // namespace mrperf::bench
