#include "bench_flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mrperf::bench {

BenchArgs::BenchArgs(int argc, char** argv)
    : program_(argc > 0 ? argv[0] : "bench") {
  args_.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  used_.assign(args_.size(), false);
}

bool BenchArgs::Consume(const char* flag, std::string* value) {
  const size_t len = std::strlen(flag);
  for (size_t i = 0; i < args_.size(); ++i) {
    const std::string& arg = args_[i];
    if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
        arg[len] == '=') {
      used_[i] = true;
      *value = arg.substr(len + 1);
      return true;
    }
    if (arg == flag && i + 1 < args_.size()) {
      used_[i] = true;
      used_[i + 1] = true;
      *value = args_[i + 1];
      return true;
    }
  }
  return false;
}

int BenchArgs::IntFlag(const char* flag, int fallback) {
  std::string value;
  return Consume(flag, &value) ? std::atoi(value.c_str()) : fallback;
}

double BenchArgs::DoubleFlag(const char* flag, double fallback) {
  std::string value;
  return Consume(flag, &value) ? std::atof(value.c_str()) : fallback;
}

std::string BenchArgs::StringFlag(const char* flag,
                                  const std::string& fallback) {
  std::string value;
  return Consume(flag, &value) ? value : fallback;
}

bool BenchArgs::BoolFlag(const char* flag) {
  for (size_t i = 0; i < args_.size(); ++i) {
    if (args_[i] == flag) {
      used_[i] = true;
      return true;
    }
  }
  return false;
}

bool BenchArgs::Validate() const {
  bool ok = true;
  for (size_t i = 0; i < args_.size(); ++i) {
    if (!used_[i]) {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", program_.c_str(),
                   args_[i].c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace mrperf::bench
