/// Acceptance gate and load generator for the predictd fleet: spawns
/// three real predictd children plus a predict-router child, then
/// drives the distributed contract over TCP:
///
///  1. **Transparency gate.** Predict requests, malformed lines and
///     stats probes through the 3-replica fleet must be byte-identical
///     to a single predictd (for predict/malformed lines) — a client
///     cannot tell the router from one daemon.
///  2. **Scatter-gather gate.** A sweep through the router must be
///     byte-identical to evaluating the expanded grid point-by-point,
///     unsplit, against one replica and merging in grid order.
///  3. **Coalescing gate.** A pipelined duplicate-key burst through the
///     router must land on one replica and be served with fewer
///     evaluations than requests — consistent-hash placement keeps the
///     replica's in-flight coalescing effective fleet-wide.
///  4. **Failover gate.** SIGKILL one replica while closed-loop
///     clients are mid-load: every admitted request must still get a
///     structured response (ok / unavailable / deadline_exceeded —
///     never a dropped connection), and follow-up requests for the
///     dead replica's keys must be re-routed and served.
///  5. **Observability gate.** GET /metrics on the router must parse
///     as Prometheus text and carry the predict_router_* families;
///     /stats must report the dead replica as unhealthy.
///  6. **Drain gate.** SIGTERM must exit the router (and the surviving
///     replicas) cleanly with code 0.
///
/// Flags: --predictd=PATH (default ./predictd), --router=PATH (default
/// ./predict_router), --connections=C (default 4), --requests=M per
/// connection in the failover load (default 16), --json-out=PATH,
/// --smoke (CI sizing).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_flags.h"
#include "common/statistics.h"
#include "engine/sweep_format.h"
#include "fleet/scatter.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/metrics.h"

namespace {

using namespace mrperf;
using SteadyClock = std::chrono::steady_clock;

struct Child {
  pid_t pid = -1;
  int port = 0;
};

/// Forks `path` with `args`, reads the first stdout line and parses
/// the bound port out of `banner_format` (which must contain one %d).
bool SpawnChild(const std::string& path, const std::vector<std::string>& args,
                const char* banner_format, Child* child) {
  int out_pipe[2];
  if (pipe(out_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed: %s\n", std::strerror(errno));
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork() failed: %s\n", std::strerror(errno));
    return false;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    std::vector<char*> argv_exec;
    argv_exec.push_back(const_cast<char*>(path.c_str()));
    for (const std::string& arg : args) {
      argv_exec.push_back(const_cast<char*>(arg.c_str()));
    }
    argv_exec.push_back(nullptr);
    execv(path.c_str(), argv_exec.data());
    std::fprintf(stderr, "execv(%s) failed: %s\n", path.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(out_pipe[1]);
  std::string line;
  char c;
  while (read(out_pipe[0], &c, 1) == 1 && c != '\n') line += c;
  close(out_pipe[0]);
  int port = 0;
  if (std::sscanf(line.c_str(), banner_format, &port) != 1 || port <= 0) {
    std::fprintf(stderr, "unexpected banner from %s: '%s'\n", path.c_str(),
                 line.c_str());
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return false;
  }
  child->pid = pid;
  child->port = port;
  return true;
}

void KillChild(Child* child) {
  if (child->pid > 0) {
    kill(child->pid, SIGKILL);
    waitpid(child->pid, nullptr, 0);
    child->pid = -1;
  }
}

/// SIGTERMs `child` and reaps it; true iff it drained and exited 0.
bool StopChildGracefully(Child* child) {
  if (child->pid <= 0) return false;
  kill(child->pid, SIGTERM);
  int wait_status = 0;
  const bool ok = waitpid(child->pid, &wait_status, 0) == child->pid &&
                  WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
  child->pid = -1;
  return ok;
}

/// Extracts stats.<key> from a replica's stats response line.
double StatsField(const std::string& response, const std::string& key) {
  Result<JsonValue> parsed = ParseJson(response);
  if (!parsed.ok()) return -1.0;
  const JsonValue* stats = parsed->Find("stats");
  const JsonValue* field = stats ? stats->Find(key) : nullptr;
  if (field == nullptr || !field->is_number()) return -1.0;
  return field->number_value();
}

double ReplicaStat(int port, const std::string& key) {
  PredictClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return -1.0;
  Result<std::string> response = client.Call(R"({"kind":"stats"})");
  if (!response.ok()) return -1.0;
  return StatsField(*response, key);
}

std::string PredictLine(const std::string& id, int nodes, int seed) {
  return R"({"id":")" + id + R"(","nodes":)" + std::to_string(nodes) +
         R"(,"input_gb":0.25,"repetitions":1,"seed":)" +
         std::to_string(seed) + "}";
}

/// Minimal HTTP GET (the router serves /metrics and /stats one-shot).
bool HttpGet(int port, const std::string& path, std::string* status_line,
             std::string* body) {
  PredictClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return false;
  if (!client.SendLine("GET " + path + " HTTP/1.1").ok()) return false;
  if (!client.SendLine("Host: localhost").ok()) return false;
  if (!client.SendLine("").ok()) return false;
  std::vector<std::string> lines;
  for (;;) {
    Result<std::string> line = client.ReadLine();
    if (!line.ok()) break;
    std::string text = *line;
    if (!text.empty() && text.back() == '\r') text.pop_back();
    lines.push_back(text);
  }
  if (lines.empty()) return false;
  *status_line = lines[0];
  size_t at = 1;
  while (at < lines.size() && !lines[at].empty()) ++at;
  ++at;
  body->clear();
  for (; at < lines.size(); ++at) {
    *body += lines[at];
    *body += '\n';
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args(argc, argv);
  const bool smoke = args.Smoke();
  const std::string predictd_path =
      args.StringFlag("--predictd", "./predictd");
  const std::string router_path =
      args.StringFlag("--router", "./predict_router");
  const std::string json_out = args.JsonOutPath();
  const int connections = std::max(1, args.IntFlag("--connections", 4));
  const int requests_per_connection =
      std::max(4, args.IntFlag("--requests", smoke ? 8 : 16));
  if (!args.Validate()) return 2;

  constexpr int kReplicas = 3;
  std::vector<Child> replicas(kReplicas);
  for (int i = 0; i < kReplicas; ++i) {
    if (!SpawnChild(predictd_path,
                    {"--port=0", "--threads=2",
                     "--replica-id=r" + std::to_string(i)},
                    "predictd listening on 127.0.0.1:%d", &replicas[i])) {
      for (Child& r : replicas) KillChild(&r);
      return 1;
    }
  }
  std::string replica_list;
  for (int i = 0; i < kReplicas; ++i) {
    if (i > 0) replica_list += ',';
    replica_list += "127.0.0.1:" + std::to_string(replicas[i].port);
  }
  Child router;
  if (!SpawnChild(router_path,
                  {"--port=0", "--replicas=" + replica_list,
                   "--probe-interval-ms=50", "--failure-threshold=2"},
                  "predict-router listening on 127.0.0.1:%d", &router)) {
    for (Child& r : replicas) KillChild(&r);
    return 1;
  }
  std::printf("fleet up: %d replicas (%s) behind router on port %d\n",
              kReplicas, replica_list.c_str(), router.port);
  const auto teardown = [&] {
    KillChild(&router);
    for (Child& r : replicas) KillChild(&r);
  };

  // ---- Gate 1: the router is transparent -------------------------------
  {
    PredictClient via_router;
    PredictClient direct;
    if (!via_router.Connect("127.0.0.1", router.port).ok() ||
        !direct.Connect("127.0.0.1", replicas[0].port).ok()) {
      std::fprintf(stderr, "transparency gate: connect failed\n");
      teardown();
      return 1;
    }
    const std::vector<std::string> probe_lines = {
        PredictLine("t0", 2, 1234),
        PredictLine("t1", 5, 1234),
        R"({"id":"t2","nodes":3,"input_gb":0.5,"model_only":true,)"
        R"("profile":"terasort"})",
        R"({"id":"t3","nodes":"many"})",  // structured replica error
        "not json at all",                // forwarded verbatim too
    };
    for (const std::string& line : probe_lines) {
      Result<std::string> routed = via_router.Call(line);
      Result<std::string> straight = direct.Call(line);
      if (!routed.ok() || !straight.ok() || *routed != *straight) {
        std::fprintf(stderr,
                     "transparency gate FAILED\n  sent: %s\n  router: %s\n"
                     "  direct: %s\n",
                     line.c_str(),
                     routed.ok() ? routed->c_str() : "<transport error>",
                     straight.ok() ? straight->c_str()
                                   : "<transport error>");
        teardown();
        return 1;
      }
    }
    std::printf("transparency: %zu responses byte-identical through the "
                "fleet\n",
                probe_lines.size());
  }

  // ---- Gate 2: scatter-gather matches the unsplit evaluation -----------
  {
    const std::string sweep =
        R"({"kind":"sweep","id":"grid","nodes":[2,3,4],"reducers":[1,2],)"
        R"("repetitions":1})";
    Result<JsonValue> parsed = ParseJson(sweep);
    Result<SweepExpansion> expanded = ExpandSweepRequest(*parsed);
    if (!expanded.ok()) {
      std::fprintf(stderr, "sweep expansion failed: %s\n",
                   expanded.status().ToString().c_str());
      teardown();
      return 1;
    }
    PredictClient direct;
    direct.Connect("127.0.0.1", replicas[0].port);
    std::vector<std::string> results;
    for (const std::string& point : expanded->point_lines) {
      Result<std::string> response = direct.Call(point);
      if (!response.ok()) {
        teardown();
        return 1;
      }
      const PointOutcome outcome = ClassifyPointResponse(*response);
      if (!outcome.ok) {
        std::fprintf(stderr, "unsplit point failed: %s\n",
                     outcome.error_message.c_str());
        teardown();
        return 1;
      }
      results.push_back(outcome.result_object);
    }
    const std::string expected =
        MakeSweepResponse(std::string("grid"), results);
    PredictClient via_router;
    via_router.Connect("127.0.0.1", router.port);
    Result<std::string> gathered = via_router.Call(sweep);
    if (!gathered.ok() || *gathered != expected) {
      std::fprintf(stderr,
                   "scatter-gather gate FAILED\n  got:  %s\n  want: %s\n",
                   gathered.ok() ? gathered->c_str() : "<transport error>",
                   expected.c_str());
      teardown();
      return 1;
    }
    std::printf("scatter-gather: %zu-point sweep byte-identical to the "
                "unsplit evaluation\n",
                expanded->point_lines.size());
  }

  // ---- Gate 3: duplicate keys coalesce fleet-wide ----------------------
  constexpr int kBurst = 32;
  double burst_evaluations = 0.0;
  {
    std::vector<double> requests_before(kReplicas);
    std::vector<double> evals_before(kReplicas);
    for (int i = 0; i < kReplicas; ++i) {
      requests_before[i] = ReplicaStat(replicas[i].port, "requests_total");
      evals_before[i] = ReplicaStat(replicas[i].port, "evaluations_total");
    }
    PredictClient client;
    client.Connect("127.0.0.1", router.port);
    // One fresh key (unseen seed), duplicated under distinct ids and
    // pipelined so the duplicates are in flight together.
    for (int i = 0; i < kBurst; ++i) {
      client.SendLine(PredictLine("burst" + std::to_string(i), 4, 4242));
    }
    std::string first;
    for (int i = 0; i < kBurst; ++i) {
      Result<std::string> response = client.ReadLine();
      if (!response.ok() ||
          response->find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "coalescing gate: burst response %d failed\n",
                     i);
        teardown();
        return 1;
      }
      const std::string result = response->substr(
          response->find("\"result\": "));
      if (i == 0) {
        first = result;
      } else if (result != first) {
        std::fprintf(stderr, "coalescing gate: responses diverged at %d\n",
                     i);
        teardown();
        return 1;
      }
    }
    int owners = 0;
    double burst_requests = 0.0;
    for (int i = 0; i < kReplicas; ++i) {
      const double delta =
          ReplicaStat(replicas[i].port, "requests_total") -
          requests_before[i];
      if (delta > 0) {
        ++owners;
        burst_requests = delta;
        burst_evaluations =
            ReplicaStat(replicas[i].port, "evaluations_total") -
            evals_before[i];
      }
    }
    std::printf(
        "coalescing: %d duplicate requests -> 1 owner replica (%d hit), "
        "%.0f evaluations\n",
        kBurst, owners, burst_evaluations);
    if (owners != 1 || burst_requests != kBurst ||
        !(burst_evaluations >= 1.0) || !(burst_evaluations < kBurst)) {
      std::fprintf(stderr,
                   "coalescing gate FAILED: %d owner replicas, %.0f "
                   "requests, %.0f evaluations\n",
                   owners, burst_requests, burst_evaluations);
      teardown();
      return 1;
    }
  }

  // ---- Gate 4: SIGKILL a replica mid-load ------------------------------
  const size_t load_total = static_cast<size_t>(connections) *
                            static_cast<size_t>(requests_per_connection);
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  long long killed_ok = 0;
  long long killed_structured = 0;
  {
    std::vector<std::vector<double>> per_client(
        static_cast<size_t>(connections));
    std::vector<long long> ok_count(static_cast<size_t>(connections), 0);
    std::vector<long long> structured_count(
        static_cast<size_t>(connections), 0);
    std::vector<long long> lost_count(static_cast<size_t>(connections), 0);
    std::vector<std::thread> clients;
    const auto start = SteadyClock::now();
    for (int c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        PredictClient client;
        if (!client.Connect("127.0.0.1", router.port).ok()) {
          lost_count[static_cast<size_t>(c)] = requests_per_connection;
          return;
        }
        for (int r = 0; r < requests_per_connection; ++r) {
          // Distinct keys spread across the whole ring, so some land on
          // the replica about to die.
          const std::string id =
              "f" + std::to_string(c) + "-" + std::to_string(r);
          const auto t0 = SteadyClock::now();
          Result<std::string> response = client.Call(
              PredictLine(id, 2 + (c * requests_per_connection + r) % 12,
                          7000 + r));
          if (!response.ok()) {
            ++lost_count[static_cast<size_t>(c)];
            continue;
          }
          per_client[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                        t0)
                  .count());
          if (response->find("\"ok\": true") != std::string::npos) {
            ++ok_count[static_cast<size_t>(c)];
          } else if (response->find("\"unavailable\"") !=
                         std::string::npos ||
                     response->find("\"deadline_exceeded\"") !=
                         std::string::npos) {
            ++structured_count[static_cast<size_t>(c)];
          } else if (response->find("\"id\": \"" + id + "\"") !=
                     std::string::npos) {
            // Any other structured error still answered this request.
            ++structured_count[static_cast<size_t>(c)];
          } else {
            ++lost_count[static_cast<size_t>(c)];
          }
        }
      });
    }
    // Let the load ramp, then hard-kill a replica (no drain, no warning:
    // SIGKILL models a crashed node).
    std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 30 : 80));
    KillChild(&replicas[1]);
    for (std::thread& t : clients) t.join();
    wall_seconds =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    long long lost = 0;
    for (int c = 0; c < connections; ++c) {
      killed_ok += ok_count[static_cast<size_t>(c)];
      killed_structured += structured_count[static_cast<size_t>(c)];
      lost += lost_count[static_cast<size_t>(c)];
      latencies_ms.insert(latencies_ms.end(),
                          per_client[static_cast<size_t>(c)].begin(),
                          per_client[static_cast<size_t>(c)].end());
    }
    std::printf(
        "failover: replica killed mid-load -> %lld ok, %lld structured "
        "errors, %lld lost of %zu requests\n",
        killed_ok, killed_structured, lost, load_total);
    if (lost != 0 ||
        killed_ok + killed_structured != static_cast<long long>(load_total)) {
      std::fprintf(stderr,
                   "failover gate FAILED: %lld responses lost (every "
                   "admitted request must be answered)\n",
                   lost);
      teardown();
      return 1;
    }
    // After the dust settles, the dead replica's keys must be served by
    // the survivors: sweep the same key range again, all must succeed.
    PredictClient client;
    client.Connect("127.0.0.1", router.port);
    for (int nodes = 2; nodes < 14; ++nodes) {
      Result<std::string> response =
          client.Call(PredictLine("post-kill", nodes, 7000));
      if (!response.ok() ||
          response->find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr,
                     "failover gate FAILED: nodes=%d not re-routed after "
                     "the kill\n",
                     nodes);
        teardown();
        return 1;
      }
    }
  }

  // ---- Gate 5: router observability ------------------------------------
  {
    std::string status_line;
    std::string body;
    if (!HttpGet(router.port, "/metrics", &status_line, &body) ||
        status_line.find("200") == std::string::npos) {
      std::fprintf(stderr, "observability gate FAILED: GET /metrics -> "
                           "'%s'\n",
                   status_line.c_str());
      teardown();
      return 1;
    }
    const Status valid = ValidatePrometheusText(body);
    if (!valid.ok()) {
      std::fprintf(stderr, "observability gate FAILED: %s\n%s",
                   valid.ToString().c_str(), body.c_str());
      teardown();
      return 1;
    }
    for (const char* needle :
         {"predict_router_requests_total", "predict_router_rerouted_total",
          "predict_router_replica_healthy"}) {
      if (body.find(needle) == std::string::npos) {
        std::fprintf(stderr, "observability gate FAILED: missing '%s'\n",
                     needle);
        teardown();
        return 1;
      }
    }
    std::string stats_status;
    std::string stats_body;
    if (!HttpGet(router.port, "/stats", &stats_status, &stats_body) ||
        stats_body.find("\"healthy\": false") == std::string::npos) {
      std::fprintf(stderr,
                   "observability gate FAILED: /stats does not report the "
                   "killed replica unhealthy:\n%s\n",
                   stats_body.c_str());
      teardown();
      return 1;
    }
    std::printf("observability: /metrics valid, /stats reports the dead "
                "replica\n");
  }

  // ---- Gate 6: clean drain ---------------------------------------------
  if (!StopChildGracefully(&router)) {
    std::fprintf(stderr, "drain gate FAILED: router did not exit 0\n");
    teardown();
    return 1;
  }
  for (int i = 0; i < kReplicas; ++i) {
    if (i == 1) continue;  // SIGKILLed in gate 4
    if (!StopChildGracefully(&replicas[i])) {
      std::fprintf(stderr, "drain gate FAILED: replica %d did not exit 0\n",
                   i);
      teardown();
      return 1;
    }
  }
  std::printf("drain: router and surviving replicas exited cleanly\n");

  if (!json_out.empty()) {
    const double p50 = Percentile(latencies_ms, 50).ValueOr(0);
    const double p99 = Percentile(latencies_ms, 99).ValueOr(0);
    const double throughput =
        wall_seconds > 0 ? static_cast<double>(load_total) / wall_seconds
                         : 0.0;
    std::string out =
        "{\"replicas\": " + std::to_string(kReplicas) +
        ", \"requests\": " + std::to_string(load_total) +
        ", \"connections\": " + std::to_string(connections) +
        ", \"wall_seconds\": ";
    AppendJsonDouble(out, wall_seconds);
    out += ", \"throughput_rps\": ";
    AppendJsonDouble(out, throughput);
    out += ", \"latency_ms\": {\"p50\": ";
    AppendJsonDouble(out, p50);
    out += ", \"p99\": ";
    AppendJsonDouble(out, p99);
    out += "}, \"burst\": {\"requests\": " + std::to_string(kBurst) +
           ", \"evaluations\": ";
    AppendJsonDouble(out, burst_evaluations);
    out += "}, \"failover\": {\"ok\": " + std::to_string(killed_ok) +
           ", \"structured_errors\": " + std::to_string(killed_structured) +
           ", \"lost\": 0}}\n";
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }
  std::printf("bench_fleet_load: all gates passed\n");
  return 0;
}
