/// Ablation: convergence threshold ε of the modified MVA loop (§4.2.6).
/// The paper uses ε = 10⁻⁷ as "a good trade-off between the level of
/// accuracy and the complexity of the algorithm (number of iterations)":
/// lower values barely change the job response while iterations keep
/// growing. This bench reproduces that trade-off curve.

#include <cstdio>

#include "experiments/experiment.h"

int main() {
  using namespace mrperf;
  ExperimentPoint point;
  point.num_nodes = 4;
  point.input_bytes = 5 * kGiB;
  point.num_jobs = 2;

  std::printf("%-10s | %10s %10s %10s %10s\n", "epsilon", "forkjoin",
              "tripathi", "iters", "converged");
  for (double eps : {1e-1, 1e-3, 1e-5, 1e-7, 1e-9, 1e-11}) {
    ExperimentOptions opts = DefaultExperimentOptions();
    opts.model.epsilon = eps;
    // Isolate the absolute threshold the paper discusses.
    opts.model.epsilon_relative = 0.0;
    auto model = RunModelPrediction(point, opts);
    if (!model.ok()) {
      std::fprintf(stderr, "model failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10.0e | %10.3f %10.3f %10d %10s\n", eps,
                model->forkjoin_response, model->tripathi_response,
                model->iterations, model->converged ? "yes" : "no");
  }
  std::printf(
      "\nExpected shape (paper §4.2.6): below 1e-7 the response changes\n"
      "negligibly while the iteration count keeps growing.\n");
  return 0;
}
