/// Reproduces the §5.2 error-range summary: runs the full evaluation grid
/// (nodes × input size × concurrency, standard 128 MB blocks plus the
/// 64 MB variant) and reports the min/max/mean absolute relative error per
/// estimator — the paper's "11%–13.5% (fork/join) vs 19%–23% (Tripathi)"
/// comparison, plus the observation that both approaches overestimate.

#include <cstdio>
#include <iostream>
#include <vector>

#include "experiments/experiment.h"
#include "experiments/report.h"

int main() {
  using namespace mrperf;
  ExperimentOptions opts = DefaultExperimentOptions();
  opts.repetitions = 3;

  std::vector<ExperimentResult> standard_block, small_block, single_job;
  for (int nodes : {4, 6, 8}) {
    for (double gb : {1.0, 5.0}) {
      for (int jobs : {1, 4}) {
        ExperimentPoint p;
        p.num_nodes = nodes;
        p.input_bytes = static_cast<int64_t>(gb * kGiB);
        p.num_jobs = jobs;
        auto r = RunExperiment(p, opts);
        if (!r.ok()) {
          std::fprintf(stderr, "grid point failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        standard_block.push_back(*r);
        if (jobs == 1) single_job.push_back(*r);
      }
    }
    // Figure 15 variant: 64 MB blocks, 5 GB, 1 job.
    ExperimentPoint p;
    p.num_nodes = nodes;
    p.input_bytes = 5 * kGiB;
    p.num_jobs = 1;
    p.block_size_bytes = 64 * kMiB;
    auto r = RunExperiment(p, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "64MB point failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    small_block.push_back(*r);
  }

  PrintErrorSummary(std::cout,
                    "Standard 128MB blocks, full grid "
                    "(paper: FJ 11-13.5%, Tripathi 19-23%)",
                    SummarizeErrors(standard_block));
  PrintErrorSummary(std::cout, "Single-job subset (paper: FJ <= 13.5%)",
                    SummarizeErrors(single_job));
  PrintErrorSummary(std::cout,
                    "64MB blocks, 5GB, 1 job "
                    "(paper: FJ 17%, Tripathi 25% — error grows with m)",
                    SummarizeErrors(small_block));
  return 0;
}
