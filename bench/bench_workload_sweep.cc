/// Generality check beyond the paper's evaluation: model-vs-simulator
/// accuracy across four canonical MapReduce job types (the Shi et al.
/// taxonomy the paper cites when motivating WordCount [8]) — map-heavy
/// (grep), balanced (wordcount), shuffle-heavy (terasort) and
/// expansion+combine (inverted index) — swept over cluster sizes 4/6/8
/// on 1 GB single-job points. All workload × nodes cells are evaluated
/// concurrently through the engine's SweepRunner (--threads=N, default
/// auto), which is also this bench's parallel-speedup yardstick.
/// `--progress` streams per-point completion (and the MVA-cache hit
/// rate) to stderr while the sweep runs; `--out=` / `--json-out=`
/// persist the results as CSV / JSON.

#include <cstdio>
#include <vector>

#include "engine/sweep_runner.h"
#include "experiments/experiment.h"
#include "experiments/report.h"
#include "figure_common.h"
#include "workload/wordcount.h"

int main(int argc, char** argv) {
  using namespace mrperf;
  bench::BenchArgs args(argc, argv);
  const int num_threads = args.Threads();
  const bool show_progress = args.Progress();
  const std::string out_path = args.OutPath();
  const std::string json_path = args.JsonOutPath();
  if (!args.Validate()) return 2;

  struct Entry {
    const char* name;
    JobProfile profile;
  };
  const Entry entries[] = {
      {"grep (map-heavy)", GrepProfile()},
      {"wordcount (paper)", WordCountProfile()},
      {"inverted-index", InvertedIndexProfile()},
      {"terasort (shuffle-heavy)", TeraSortProfile()},
  };
  const int node_counts[] = {4, 6, 8};

  // One task per workload × nodes cell; SweepRunner re-derives each
  // task's seed from its index, so results do not depend on the worker
  // count or completion order.
  std::vector<SweepRunner::Task> tasks;
  for (const Entry& e : entries) {
    for (int nodes : node_counts) {
      SweepRunner::Task task;
      task.options = DefaultExperimentOptions();
      task.options.profile = e.profile;
      task.options.repetitions = 3;
      task.point.num_nodes = nodes;
      task.point.input_bytes = 1 * kGiB;
      task.point.num_jobs = 1;
      // Pin the calibrated seed (§5 calibration stream) so the
      // accuracy table matches the serial seed-repo numbers.
      task.derive_seed = false;
      tasks.push_back(task);
    }
  }

  SweepOptions sweep_opts;
  sweep_opts.num_threads = num_threads;
  if (show_progress) {
    sweep_opts.progress = [](const SweepProgress& p) {
      std::fprintf(stderr,
                   "\rpoint %zu/%zu done (MVA cache: %lld/%lld hits)",
                   p.points_done, p.points_total,
                   static_cast<long long>(p.cache.hits),
                   static_cast<long long>(p.cache.lookups()));
      if (p.points_done == p.points_total) std::fprintf(stderr, "\n");
    };
  }
  SweepRunner runner(sweep_opts);
  SweepReport report = runner.RunTasks(tasks);
  if (!report.all_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 report.first_error().ToString().c_str());
    return 1;
  }

  std::printf("%-26s | %5s | %9s | %9s (%6s) | %9s (%6s)\n", "workload",
              "nodes", "measured", "forkjoin", "err", "tripathi", "err");
  size_t idx = 0;
  for (const Entry& e : entries) {
    for (int nodes : node_counts) {
      const ExperimentResult& r = *report.results[idx++];
      std::printf(
          "%-26s | %5d | %9.1f | %9.1f (%+5.1f%%) | %9.1f (%+5.1f%%)\n",
          e.name, nodes, r.measured_sec, r.forkjoin_sec,
          r.forkjoin_error * 100, r.tripathi_sec, r.tripathi_error * 100);
    }
  }
  PrintSweepStats(std::cout, tasks.size(), report.threads_used,
                  report.wall_seconds, report.cache_stats.hits,
                  report.cache_stats.lookups());
  if (!bench::MaybeWriteCsv(out_path, report.values())) return 1;
  if (!bench::MaybeWriteJson(json_path, report.values())) return 1;
  std::printf(
      "\nExpected shape: the calibration was fit on WordCount only; the\n"
      "other job types stress different resource mixes. Errors stay within\n"
      "roughly +/-25%% off-calibration; shuffle-heavy jobs are\n"
      "underestimated (the timeline's single per-remote-map term abstracts\n"
      "the simulator's segment-level in-cast contention), which also flips\n"
      "the fork/join-vs-Tripathi ordering where both undershoot.\n");
  return 0;
}
