/// Generality check beyond the paper's evaluation: model-vs-simulator
/// accuracy across four canonical MapReduce job types (the Shi et al.
/// taxonomy the paper cites when motivating WordCount [8]) — map-heavy
/// (grep), balanced (wordcount), shuffle-heavy (terasort) and
/// expansion+combine (inverted index) — on the standard 4-node / 1 GB /
/// single-job point.

#include <cstdio>

#include "experiments/experiment.h"
#include "workload/wordcount.h"

int main() {
  using namespace mrperf;
  struct Entry {
    const char* name;
    JobProfile profile;
  };
  const Entry entries[] = {
      {"grep (map-heavy)", GrepProfile()},
      {"wordcount (paper)", WordCountProfile()},
      {"inverted-index", InvertedIndexProfile()},
      {"terasort (shuffle-heavy)", TeraSortProfile()},
  };

  std::printf("%-26s | %9s | %9s (%6s) | %9s (%6s)\n", "workload",
              "measured", "forkjoin", "err", "tripathi", "err");
  for (const Entry& e : entries) {
    ExperimentOptions opts = DefaultExperimentOptions();
    opts.profile = e.profile;
    opts.repetitions = 3;
    ExperimentPoint point;
    point.num_nodes = 4;
    point.input_bytes = 1 * kGiB;
    point.num_jobs = 1;
    auto r = RunExperiment(point, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", e.name,
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-26s | %9.1f | %9.1f (%+5.1f%%) | %9.1f (%+5.1f%%)\n",
                e.name, r->measured_sec, r->forkjoin_sec,
                r->forkjoin_error * 100, r->tripathi_sec,
                r->tripathi_error * 100);
  }
  std::printf(
      "\nExpected shape: the calibration was fit on WordCount only; the\n"
      "other job types stress different resource mixes. Errors stay within\n"
      "roughly +/-25%% off-calibration; shuffle-heavy jobs are\n"
      "underestimated (the timeline's single per-remote-map term abstracts\n"
      "the simulator's segment-level in-cast contention), which also flips\n"
      "the fork/join-vs-Tripathi ordering where both undershoot.\n");
  return 0;
}
