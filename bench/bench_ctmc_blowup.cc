/// Reproduces the paper's §2.2 scalability argument against Markov-chain
/// approaches: "the state space grows exponentially with the number of
/// tasks, making it impossible to be applied to model jobs with many
/// tasks". Sweeps the distinct-task CTMC over task counts, reporting state
/// count and solve time, next to the MVA-based model whose cost is
/// polynomial (§4.3: O(C²N²K)).

#include <benchmark/benchmark.h>

#include <vector>

#include "queueing/ctmc.h"
#include "queueing/mva_overlap.h"

namespace mrperf {
namespace {

void BM_CtmcDistinctTasks(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::vector<double> rates;
  rates.reserve(m);
  for (int i = 0; i < m; ++i) {
    rates.push_back(1.0 + 0.01 * i);  // heterogeneous tasks
  }
  size_t states = 0;
  for (auto _ : state) {
    auto r = ExactMakespanDistinctChain(rates, /*max_tasks=*/24);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    states = r->num_states;
    benchmark::DoNotOptimize(r);
  }
  state.counters["states"] =
      benchmark::Counter(static_cast<double>(states));
  state.SetComplexityN(m);
}
// 2^20 states is ~1M; beyond that a laptop runs out of patience — which
// is precisely the point being demonstrated.
BENCHMARK(BM_CtmcDistinctTasks)->DenseRange(4, 18, 2)->Complexity();

void BM_OverlapMvaSameTasks(benchmark::State& state) {
  // The paper's answer to the blowup: MVA cost grows polynomially in the
  // number of tasks.
  const int m = static_cast<int>(state.range(0));
  OverlapMvaProblem p;
  p.centers = {{"cpu", CenterType::kQueueing, 4}};
  p.tasks.assign(m, OverlapTask{{1.0}});
  p.overlap.assign(m, std::vector<double>(m, 1.0));
  for (int i = 0; i < m; ++i) p.overlap[i][i] = 0.0;
  for (auto _ : state) {
    auto sol = SolveOverlapMva(p);
    benchmark::DoNotOptimize(sol);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_OverlapMvaSameTasks)->DenseRange(4, 18, 2)->Complexity();

}  // namespace
}  // namespace mrperf

BENCHMARK_MAIN();
