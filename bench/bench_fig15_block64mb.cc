/// Reproduces Figure 15: job response time vs number of nodes for
/// WordCount on 5 GB input with the block size reduced from 128 MB to
/// 64 MB (doubling the number of map tasks, deepening the precedence
/// tree). The paper observes the largest estimation errors here (17%
/// fork/join, 25% Tripathi).

#include "figure_common.h"

int main(int argc, char** argv) {
  mrperf::bench::BenchArgs args(argc, argv);
  const int threads = args.Threads();
  const std::string out = args.OutPath();
  const std::string json_out = args.JsonOutPath();
  if (!args.Validate()) return 2;
  return mrperf::bench::RunNodeSweepFigure(
      "Figure 15: Block 64MB; Input 5GB; #jobs 1", /*input_gb=*/5.0,
      /*num_jobs=*/1, /*block_size_bytes=*/64 * mrperf::kMiB,
      threads, out, json_out);
}
