/// Scenario-grid sweep — the first model scenarios the paper never
/// measured. The §5 evaluation varies only numeric knobs (nodes, input,
/// jobs, block size) with scheduler, workload and cluster shape pinned;
/// this bench sweeps exactly those structural axes through the same
/// engine: capacity-FIFO vs Tetris packing (§2.1/§4.2.2), two workload
/// profiles (balanced wordcount vs shuffle-heavy terasort), and
/// {uniform, 2-tier heterogeneous} cluster shapes, at a fixed fig11-like
/// numeric point. Under Tetris the analytic model keeps its capacity-FIFO
/// placement assumption, so those rows quantify how far the paper's model
/// carries beyond its own scheduler; heterogeneous rows exercise the
/// §4.2.2 lowest-occupancy placement over mixed-capacity nodes.
///
/// Flags: --threads=N (0 = auto), --out=CSV, --json-out=JSON,
/// --progress (per-point stderr stream), --smoke (small grid + a
/// determinism gate: the sweep must be byte-identical at 1 worker and at
/// the requested worker count — the CI Release perf-smoke configuration).

#include <cstdio>
#include <string>
#include <vector>

#include "engine/sweep_csv.h"
#include "engine/sweep_grid.h"
#include "engine/sweep_json.h"
#include "engine/sweep_runner.h"
#include "experiments/experiment.h"
#include "experiments/report.h"
#include "figure_common.h"
#include "workload/wordcount.h"

int main(int argc, char** argv) {
  using namespace mrperf;

  bench::BenchArgs args(argc, argv);
  const int num_threads = args.Threads();
  const bool smoke = args.Smoke();
  const bool show_progress = args.Progress();
  const std::string out_path = args.OutPath();
  const std::string json_path = args.JsonOutPath();
  if (!args.Validate()) return 2;

  // 2-tier heterogeneous shape: half big paper-testbed nodes, half
  // small nodes with a quarter of the memory and a third of the cores.
  const ClusterShape two_tier = {ClusterNodeGroup{2, Resource{64 * kGiB, 12}},
                                 ClusterNodeGroup{2, Resource{16 * kGiB, 4}}};

  SweepGrid grid;
  grid.Schedulers(
          {SchedulerKind::kCapacityFifo, SchedulerKind::kTetrisPacking})
      .Profiles({"wordcount", "terasort"})
      .ClusterShapes({{}, two_tier})
      .Nodes({4})
      .InputGigabytes({smoke ? 0.5 : 1.0})
      .Jobs({2});

  SweepOptions sweep_opts;
  sweep_opts.num_threads = num_threads;
  sweep_opts.experiment = DefaultExperimentOptions();
  sweep_opts.experiment.repetitions = smoke ? 2 : 3;
  // Pin the calibrated measurement stream, as the figure benches do.
  sweep_opts.derive_point_seeds = false;
  if (show_progress) {
    sweep_opts.progress = [](const SweepProgress& p) {
      std::fprintf(stderr,
                   "\rpoint %zu/%zu done (MVA cache: %lld/%lld hits)",
                   p.points_done, p.points_total,
                   static_cast<long long>(p.cache.hits),
                   static_cast<long long>(p.cache.lookups()));
      if (p.points_done == p.points_total) std::fprintf(stderr, "\n");
    };
  }

  SweepRunner runner(sweep_opts);
  SweepReport report = runner.Run(grid);
  if (!report.all_ok()) {
    const auto points = grid.Expand();
    for (size_t i = 0; i < report.results.size(); ++i) {
      if (!report.results[i].ok()) {
        std::fprintf(stderr, "scenario %s failed: %s\n",
                     PointLabel(points[i]).c_str(),
                     report.results[i].status().ToString().c_str());
      }
    }
    return 1;
  }
  const std::vector<ExperimentResult> results = report.values();

  std::printf("%-9s | %-9s | %-26s | %9s | %9s (%6s) | %9s (%6s)\n",
              "scheduler", "profile", "cluster", "measured", "forkjoin",
              "err", "tripathi", "err");
  for (const ExperimentResult& r : results) {
    const ScenarioSpec& sc = r.point.scenario;
    std::printf(
        "%-9s | %-9s | %-26s | %9.1f | %9.1f (%+5.1f%%) | %9.1f "
        "(%+5.1f%%)\n",
        SchedulerKindToString(sc.scheduler), sc.profile.c_str(),
        ClusterShapeLabel(sc.cluster).c_str(), r.measured_sec,
        r.forkjoin_sec, r.forkjoin_error * 100, r.tripathi_sec,
        r.tripathi_error * 100);
  }
  PrintSweepStats(std::cout, results.size(), report.threads_used,
                  report.wall_seconds, report.cache_stats.hits,
                  report.cache_stats.lookups());

  if (smoke) {
    // Determinism gate: the scenario grid must expand and evaluate to
    // byte-identical serialized results at any worker count. Re-run on a
    // single worker and diff the CSV bytes (which cover every point
    // coordinate, scenario column and %.17g double).
    SweepOptions serial_opts = sweep_opts;
    serial_opts.num_threads = 1;
    serial_opts.progress = nullptr;
    SweepRunner serial_runner(serial_opts);
    SweepReport serial = serial_runner.Run(grid);
    if (!serial.all_ok()) {
      std::fprintf(stderr, "smoke: serial re-run failed: %s\n",
                   serial.first_error().ToString().c_str());
      return 1;
    }
    if (FormatSweepCsv(results) != FormatSweepCsv(serial.values())) {
      std::fprintf(stderr,
                   "smoke: scenario sweep is NOT byte-identical across "
                   "worker counts\n");
      return 1;
    }
    std::printf("smoke: byte-identical at %d worker(s) vs 1 worker\n",
                report.threads_used);
  }

  if (!bench::MaybeWriteCsv(out_path, results)) return 1;
  if (!bench::MaybeWriteJson(json_path, results)) return 1;
  std::printf(
      "\nExpected shape: Tetris rows keep the model's capacity-FIFO\n"
      "assumption, so their errors bound how far the paper's model\n"
      "carries under a packing scheduler (§2.1). The 2-tier cluster has\n"
      "less aggregate capacity than 4 uniform big nodes, so measured\n"
      "responses rise; the model tracks it via per-node slots/vcores and\n"
      "the lowest-occupancy placement rule (§4.2.2).\n");
  return 0;
}
