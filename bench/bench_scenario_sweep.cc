/// Scenario-grid sweep — the first model scenarios the paper never
/// measured. The §5 evaluation varies only numeric knobs (nodes, input,
/// jobs, block size) with scheduler, workload and cluster shape pinned;
/// this bench sweeps exactly those structural axes through the same
/// engine: capacity-FIFO vs Tetris packing (§2.1/§4.2.2), two workload
/// profiles (balanced wordcount vs shuffle-heavy terasort), and
/// {uniform, 2-tier heterogeneous} cluster shapes, at a fixed fig11-like
/// numeric point. Under Tetris the analytic model keeps its capacity-FIFO
/// placement assumption, so those rows quantify how far the paper's model
/// carries beyond its own scheduler; heterogeneous rows exercise the
/// §4.2.2 lowest-occupancy placement over mixed-capacity nodes.
///
/// The grid is also re-run with SweepOptions::warm_start on, so the
/// bench records the A4 solver effort both ways: the JSON artifact
/// carries cold vs warm executed-sweep totals, and --smoke gates that
/// the warm run (a) executes strictly fewer damped MVA sweeps, (b) stays
/// byte-identical across worker counts (the warm-start chains are a pure
/// function of the point index), and (c) matches the cold predictions
/// within the solver tolerance.
///
/// Flags: --threads=N (0 = auto), --out=CSV, --json-out=JSON,
/// --progress (per-point stderr stream), --smoke (small grid + a
/// determinism gate: the sweep must be byte-identical at 1 worker and at
/// the requested worker count — the CI Release perf-smoke configuration).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/sweep_csv.h"
#include "engine/sweep_grid.h"
#include "engine/sweep_json.h"
#include "engine/sweep_runner.h"
#include "experiments/experiment.h"
#include "experiments/report.h"
#include "figure_common.h"
#include "workload/wordcount.h"

namespace {

/// A4 solver-effort totals summed over every point of a sweep.
struct SolverTotals {
  long long sweeps = 0;      // executed damped MVA sweeps
  long long warm_solves = 0;
  long long cold_solves = 0;
  long long cache_hits = 0;
};

SolverTotals SumSolverTotals(
    const std::vector<mrperf::ExperimentResult>& results) {
  SolverTotals t;
  for (const mrperf::ExperimentResult& r : results) {
    t.sweeps += r.mva_iterations;
    t.warm_solves += r.mva_warm_solves;
    t.cold_solves += r.mva_cold_solves;
    t.cache_hits += r.mva_cache_hits;
  }
  return t;
}

/// Warm-vs-cold agreement: the simulator is untouched by warm starts
/// (measured medians must be bit-equal), and the model predictions must
/// agree within the fixed point's own tolerance headroom.
bool WarmMatchesCold(const std::vector<mrperf::ExperimentResult>& cold,
                     const std::vector<mrperf::ExperimentResult>& warm,
                     double rel_tol) {
  if (cold.size() != warm.size()) return false;
  const auto close = [rel_tol](double a, double b) {
    return std::abs(a - b) <= rel_tol * std::max(1.0, std::abs(a));
  };
  for (size_t i = 0; i < cold.size(); ++i) {
    const bool measured_equal =
        cold[i].measured_sec == warm[i].measured_sec ||
        (std::isnan(cold[i].measured_sec) && std::isnan(warm[i].measured_sec));
    if (!measured_equal) return false;
    if (!close(cold[i].forkjoin_sec, warm[i].forkjoin_sec)) return false;
    if (!close(cold[i].tripathi_sec, warm[i].tripathi_sec)) return false;
  }
  return true;
}

/// Writes {"results": <FormatSweepJson array>, "iterations": {...}} so
/// the BENCH artifact records the warm-start win alongside the series.
bool WriteSweepJsonWithIterations(const std::string& path,
                                  const std::vector<mrperf::ExperimentResult>&
                                      results,
                                  const SolverTotals& cold,
                                  const SolverTotals& warm,
                                  const SolverTotals& cold_cached,
                                  const SolverTotals& warm_cached) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  std::string arr = mrperf::FormatSweepJson(results);
  while (!arr.empty() && arr.back() == '\n') arr.pop_back();
  const double n = results.empty() ? 1.0 : static_cast<double>(results.size());
  const double reduction =
      cold.sweeps > 0
          ? 1.0 - static_cast<double>(warm.sweeps) /
                      static_cast<double>(cold.sweeps)
          : 0.0;
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      ",\n  \"iterations\": {\"cold_total\": %lld, \"cold_mean\": %.17g, "
      "\"cold_solves\": %lld, \"cold_cache_hits\": %lld, "
      "\"warm_total\": %lld, \"warm_mean\": %.17g, "
      "\"warm_solves\": %lld, \"warm_cold_solves\": %lld, "
      "\"warm_cache_hits\": %lld, \"reduction\": %.17g, "
      "\"cold_cached_total\": %lld, \"warm_cached_total\": %lld}\n}\n",
      cold.sweeps, static_cast<double>(cold.sweeps) / n, cold.cold_solves,
      cold.cache_hits, warm.sweeps, static_cast<double>(warm.sweeps) / n,
      warm.warm_solves, warm.cold_solves, warm.cache_hits, reduction,
      cold_cached.sweeps, warm_cached.sweeps);
  file << "{\n  \"results\": " << arr << buf;
  file.flush();
  if (!file) {
    std::fprintf(stderr, "failed writing '%s'\n", path.c_str());
    return false;
  }
  std::printf("wrote %zu records to %s\n", results.size(), path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrperf;

  bench::BenchArgs args(argc, argv);
  const int num_threads = args.Threads();
  const bool smoke = args.Smoke();
  const bool show_progress = args.Progress();
  const std::string out_path = args.OutPath();
  const std::string json_path = args.JsonOutPath();
  if (!args.Validate()) return 2;

  // 2-tier heterogeneous shape: half big paper-testbed nodes, half
  // small nodes with a quarter of the memory and a third of the cores.
  const ClusterShape two_tier = {ClusterNodeGroup{2, Resource{64 * kGiB, 12}},
                                 ClusterNodeGroup{2, Resource{16 * kGiB, 4}}};

  SweepGrid grid;
  grid.Schedulers(
          {SchedulerKind::kCapacityFifo, SchedulerKind::kTetrisPacking})
      .Profiles({"wordcount", "terasort"})
      .ClusterShapes({{}, two_tier})
      .Nodes({4})
      .InputGigabytes({smoke ? 0.5 : 1.0})
      .Jobs({2});

  SweepOptions sweep_opts;
  sweep_opts.num_threads = num_threads;
  sweep_opts.experiment = DefaultExperimentOptions();
  sweep_opts.experiment.repetitions = smoke ? 2 : 3;
  // Pin the calibrated measurement stream, as the figure benches do.
  sweep_opts.derive_point_seeds = false;
  if (show_progress) {
    sweep_opts.progress = [](const SweepProgress& p) {
      std::fprintf(stderr,
                   "\rpoint %zu/%zu done (MVA cache: %lld/%lld hits)",
                   p.points_done, p.points_total,
                   static_cast<long long>(p.cache.hits),
                   static_cast<long long>(p.cache.lookups()));
      if (p.points_done == p.points_total) std::fprintf(stderr, "\n");
    };
  }

  SweepRunner runner(sweep_opts);
  SweepReport report = runner.Run(grid);
  if (!report.all_ok()) {
    const auto points = grid.Expand();
    for (size_t i = 0; i < report.results.size(); ++i) {
      if (!report.results[i].ok()) {
        std::fprintf(stderr, "scenario %s failed: %s\n",
                     PointLabel(points[i]).c_str(),
                     report.results[i].status().ToString().c_str());
      }
    }
    return 1;
  }
  const std::vector<ExperimentResult> results = report.values();

  std::printf("%-9s | %-9s | %-26s | %9s | %9s (%6s) | %9s (%6s)\n",
              "scheduler", "profile", "cluster", "measured", "forkjoin",
              "err", "tripathi", "err");
  for (const ExperimentResult& r : results) {
    const ScenarioSpec& sc = r.point.scenario;
    std::printf(
        "%-9s | %-9s | %-26s | %9.1f | %9.1f (%+5.1f%%) | %9.1f "
        "(%+5.1f%%)\n",
        SchedulerKindToString(sc.scheduler), sc.profile.c_str(),
        ClusterShapeLabel(sc.cluster).c_str(), r.measured_sec,
        r.forkjoin_sec, r.forkjoin_error * 100, r.tripathi_sec,
        r.tripathi_error * 100);
  }
  PrintSweepStats(std::cout, results.size(), report.threads_used,
                  report.wall_seconds, report.cache_stats.hits,
                  report.cache_stats.lookups());

  // Warm-start re-run of the same grid in the production configuration
  // (shared cache on): chunk-chained initial guesses, chunk_points=4 so
  // the 8-point grid still schedules multiple chains.
  SweepOptions warm_opts = sweep_opts;
  warm_opts.warm_start = true;
  warm_opts.chunk_points = 4;
  warm_opts.progress = nullptr;
  SweepRunner warm_runner(warm_opts);
  SweepReport warm_report = warm_runner.Run(grid);
  if (!warm_report.all_ok()) {
    std::fprintf(stderr, "warm-start sweep failed: %s\n",
                 warm_report.first_error().ToString().c_str());
    return 1;
  }
  const std::vector<ExperimentResult> warm_results = warm_report.values();

  // Warm-start ablation, shared cache OFF in both arms. The scenario
  // grid's scheduler axis is invisible to the analytic model (it always
  // assumes capacity-FIFO placement), so half the grid poses exactly
  // duplicated model problems — which the shared cache dedups for free
  // in the cold run, while warm solves must bypass it (a warm result is
  // trajectory-dependent; caching it would make sweep output depend on
  // scheduling). Holding the cache off in both arms isolates the
  // warm-start lever the way a real what-if grid of distinct points
  // sees it; the cache-on totals are printed alongside for context.
  const auto run_arm = [&](bool warm_start) -> SweepReport {
    SweepOptions arm = sweep_opts;
    arm.use_mva_cache = false;
    arm.warm_start = warm_start;
    arm.chunk_points = 4;
    arm.progress = nullptr;
    SweepRunner arm_runner(arm);
    return arm_runner.Run(grid);
  };
  const SweepReport cold_nocache = run_arm(false);
  const SweepReport warm_nocache = run_arm(true);
  if (!cold_nocache.all_ok() || !warm_nocache.all_ok()) {
    std::fprintf(stderr, "ablation arm failed: %s\n",
                 (!cold_nocache.all_ok() ? cold_nocache.first_error()
                                         : warm_nocache.first_error())
                     .ToString()
                     .c_str());
    return 1;
  }
  const SolverTotals cold_totals = SumSolverTotals(cold_nocache.values());
  const SolverTotals warm_totals = SumSolverTotals(warm_nocache.values());
  const SolverTotals cold_cached = SumSolverTotals(results);
  const SolverTotals warm_cached = SumSolverTotals(warm_results);

  std::printf("\nwarm-start ablation (executed A4 damped MVA sweeps)\n");
  std::printf("%-12s | %10s | %8s | %11s | %11s | %10s\n", "mode",
              "mva sweeps", "mean/pt", "cold solves", "warm solves",
              "memo+hits");
  const auto print_row = [&](const char* name, const SolverTotals& t) {
    std::printf("%-12s | %10lld | %8.1f | %11lld | %11lld | %10lld\n", name,
                t.sweeps, static_cast<double>(t.sweeps) / results.size(),
                t.cold_solves, t.warm_solves, t.cache_hits);
  };
  print_row("cold", cold_totals);
  print_row("warm", warm_totals);
  print_row("cold+cache", cold_cached);
  print_row("warm+cache", warm_cached);
  if (cold_totals.sweeps > 0) {
    std::printf("warm start cuts executed sweeps by %.1f%%\n",
                100.0 * (1.0 - static_cast<double>(warm_totals.sweeps) /
                                   static_cast<double>(cold_totals.sweeps)));
  }

  if (smoke) {
    // Determinism gate: the scenario grid must expand and evaluate to
    // byte-identical serialized results at any worker count. Re-run on a
    // single worker and diff the CSV bytes (which cover every point
    // coordinate, scenario column and %.17g double).
    SweepOptions serial_opts = sweep_opts;
    serial_opts.num_threads = 1;
    serial_opts.progress = nullptr;
    SweepRunner serial_runner(serial_opts);
    SweepReport serial = serial_runner.Run(grid);
    if (!serial.all_ok()) {
      std::fprintf(stderr, "smoke: serial re-run failed: %s\n",
                   serial.first_error().ToString().c_str());
      return 1;
    }
    if (FormatSweepCsv(results) != FormatSweepCsv(serial.values())) {
      std::fprintf(stderr,
                   "smoke: scenario sweep is NOT byte-identical across "
                   "worker counts\n");
      return 1;
    }
    std::printf("smoke: byte-identical at %d worker(s) vs 1 worker\n",
                report.threads_used);

    // The same gate with warm starts on: the chunk layout and every
    // warm chain are pure functions of the point index, so the warm
    // sweep must also serialize byte-identically at any worker count.
    SweepOptions warm_serial_opts = warm_opts;
    warm_serial_opts.num_threads = 1;
    SweepRunner warm_serial_runner(warm_serial_opts);
    SweepReport warm_serial = warm_serial_runner.Run(grid);
    if (!warm_serial.all_ok()) {
      std::fprintf(stderr, "smoke: warm serial re-run failed: %s\n",
                   warm_serial.first_error().ToString().c_str());
      return 1;
    }
    if (FormatSweepCsv(warm_results) !=
        FormatSweepCsv(warm_serial.values())) {
      std::fprintf(stderr,
                   "smoke: warm-start sweep is NOT byte-identical across "
                   "worker counts\n");
      return 1;
    }
    std::printf("smoke: warm-start byte-identical at %d worker(s) vs 1 "
                "worker\n",
                warm_report.threads_used);

    // Perf gate: warm starts must strictly reduce executed solver work,
    // and by at least 25% on this reference grid (the PR's headline).
    if (warm_totals.sweeps >= cold_totals.sweeps ||
        4 * warm_totals.sweeps > 3 * cold_totals.sweeps) {
      std::fprintf(stderr,
                   "smoke: warm start did not cut executed MVA sweeps by "
                   ">=25%% (warm %lld vs cold %lld)\n",
                   warm_totals.sweeps, cold_totals.sweeps);
      return 1;
    }
    // Accuracy gate: warm fixed points agree with the cold ones.
    if (!WarmMatchesCold(results, warm_results, 1e-6)) {
      std::fprintf(stderr,
                   "smoke: warm-start predictions diverge from the cold "
                   "sweep beyond tolerance\n");
      return 1;
    }
    std::printf("smoke: warm start reduced sweeps %lld -> %lld within "
                "tolerance\n",
                cold_totals.sweeps, warm_totals.sweeps);
  }

  if (!bench::MaybeWriteCsv(out_path, results)) return 1;
  if (!json_path.empty() &&
      !WriteSweepJsonWithIterations(json_path, results, cold_totals,
                                    warm_totals, cold_cached, warm_cached)) {
    return 1;
  }
  std::printf(
      "\nExpected shape: Tetris rows keep the model's capacity-FIFO\n"
      "assumption, so their errors bound how far the paper's model\n"
      "carries under a packing scheduler (§2.1). The 2-tier cluster has\n"
      "less aggregate capacity than 4 uniform big nodes, so measured\n"
      "responses rise; the model tracks it via per-node slots/vcores and\n"
      "the lowest-occupancy placement rule (§4.2.2).\n");
  return 0;
}
