/// \file bench_flags.h
/// \brief The shared CLI surface of the bench binaries.
///
/// Every bench used to hand-roll the same strncmp loops for
/// `--threads/--out/--json-out/--progress/--smoke`, with slightly
/// different accepted spellings and silently ignored typos. BenchArgs
/// centralizes the parsing: both `--flag=value` and `--flag value`
/// spellings are accepted everywhere, bench-specific flags go through
/// the same typed accessors, and `Validate()` rejects anything left
/// over with one uniform error message — a typo like `--thread=8` fails
/// the run instead of silently benchmarking the default.
///
/// Usage: construct from (argc, argv), read every flag the bench
/// understands, then call Validate() last — it reports precisely the
/// arguments no accessor consumed.

#pragma once

#include <string>
#include <vector>

namespace mrperf::bench {

/// \brief Argument parser for bench binaries (see file comment).
class BenchArgs {
 public:
  BenchArgs(int argc, char** argv);

  /// `--flag=N` / `--flag N`; `fallback` when absent. A malformed value
  /// parses as 0/0.0 (atoi semantics) — bound it at the call site.
  int IntFlag(const char* flag, int fallback);
  double DoubleFlag(const char* flag, double fallback);
  /// `--flag=S` / `--flag S`; `fallback` when absent.
  std::string StringFlag(const char* flag,
                         const std::string& fallback = std::string());
  /// Bare `--flag` presence.
  bool BoolFlag(const char* flag);

  /// The uniform surface shared by every sweep bench.
  int Threads() { return IntFlag("--threads", 0); }
  std::string OutPath() { return StringFlag("--out"); }
  std::string JsonOutPath() { return StringFlag("--json-out"); }
  bool Progress() { return BoolFlag("--progress"); }
  bool Smoke() { return BoolFlag("--smoke"); }

  /// Call after reading every known flag: prints one uniform error per
  /// argument nothing consumed and returns false if there were any.
  bool Validate() const;

 private:
  /// Finds `flag` in either spelling, marks what it consumes, returns
  /// whether it was present (value in *value).
  bool Consume(const char* flag, std::string* value);

  std::string program_;
  std::vector<std::string> args_;
  std::vector<bool> used_;
};

}  // namespace mrperf::bench
