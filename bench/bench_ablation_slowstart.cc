/// Ablation: reduce slow start on vs off (Algorithm 1, lines 7-11).
/// With slow start the shuffle-sort may begin at the first map completion
/// ("shuffling starts as early as possible"); without it, only after the
/// last map. The effect requires a multi-wave map stage — in a single
/// wave with class-uniform durations the first and last map completions
/// coincide — so this ablation runs a 5 GB job on a deliberately small
/// cluster (2 nodes, 4 GB containers → 32 slots for 40 maps → 2 waves).

#include <cstdio>

#include "common/statistics.h"
#include "experiments/experiment.h"
#include "workload/wordcount.h"

int main() {
  using namespace mrperf;
  const int nodes = 2;
  std::printf("workload: 5GB WordCount, %d nodes, 4GB containers "
              "(two map waves)\n\n",
              nodes);
  std::printf("%-9s | %10s %10s %10s | %s\n", "slowstart", "measured",
              "forkjoin", "tripathi", "ss start vs last map end (model)");

  for (bool slow_start : {true, false}) {
    ExperimentOptions opts = DefaultExperimentOptions();
    opts.repetitions = 3;

    HadoopConfig cfg = PaperHadoopConfig();
    cfg.slowstart_enabled = slow_start;
    cfg.map_container_bytes = 4 * kGiB;
    cfg.reduce_container_bytes = 4 * kGiB;

    const ClusterConfig cluster = PaperCluster(nodes);
    std::vector<double> means;
    bool sim_failed = false;
    for (int rep = 0; rep < opts.repetitions; ++rep) {
      SimOptions sim_opts = opts.sim;
      sim_opts.seed = opts.base_seed + rep * 7919;
      ClusterSimulator sim(cluster, sim_opts);
      SimJobSpec spec;
      spec.profile = opts.profile;
      spec.config = cfg;
      spec.input_bytes = 5 * kGiB;
      if (!sim.SubmitJob(spec).ok()) {
        sim_failed = true;
        break;
      }
      auto r = sim.Run();
      if (!r.ok()) {
        sim_failed = true;
        break;
      }
      means.push_back(r->MeanJobResponse());
    }
    auto input = ModelInputFromHerodotou(cluster, cfg, opts.profile,
                                         5 * kGiB, 1);
    if (sim_failed || !input.ok()) {
      std::fprintf(stderr, "ablation point failed\n");
      return 1;
    }
    auto model = SolveModel(*input, opts.model);
    if (!model.ok()) {
      std::fprintf(stderr, "model failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    // Where does the model start the shuffle relative to the map stage?
    double last_map_end = 0.0, first_ss_start = 1e18;
    for (const auto& t : model->timeline.tasks) {
      if (t.cls == TaskClass::kMap) {
        last_map_end = std::max(last_map_end, t.interval.end);
      } else if (t.cls == TaskClass::kShuffleSort) {
        first_ss_start = std::min(first_ss_start, t.interval.start);
      }
    }
    std::printf("%-9s | %10.1f %10.1f %10.1f | shuffle starts %+.1fs\n",
                slow_start ? "on" : "off", Median(means),
                model->forkjoin_response, model->tripathi_response,
                first_ss_start - last_map_end);
  }
  std::printf(
      "\nExpected shape: with slow start the model's shuffle overlaps the\n"
      "second map wave (negative offset) and its estimates drop; without\n"
      "it the shuffle strictly follows the maps. The simulated measurement\n"
      "is less sensitive because fetches are gated on map outputs either\n"
      "way — exactly the pipelining the model's border rule abstracts.\n");
  return 0;
}
