/// Microbenchmark for the §4.3 complexity analysis of timeline /
/// precedence-tree construction: O(C × T) with C = m + r(m+1) tasks and
/// T = n × max(MaxMapsPerNode, MaxReducesPerNode) containers.

#include <benchmark/benchmark.h>

#include "model/precedence_tree.h"
#include "model/timeline.h"

namespace mrperf {
namespace {

ModelInput ScalingInput(int maps, int nodes) {
  ModelInput in;
  in.num_nodes = nodes;
  in.cpu_per_node = 12;
  in.disk_per_node = 1;
  in.map_tasks = maps;
  in.reduce_tasks = std::max(1, maps / 20);
  in.max_maps_per_node = 8;
  in.max_reduces_per_node = 8;
  in.map_demand = {16.0, 3.0, 0.0};
  in.shuffle_sort_local_demand = {1.0, 4.0, 0.0};
  in.shuffle_per_remote_map_sec = 0.05;
  in.merge_demand = {6.0, 2.0, 0.5};
  in.init_map_response = 19.0;
  in.init_shuffle_sort_response = 6.0;
  in.init_merge_response = 8.5;
  return in;
}

TaskDurations ScalingDurations() {
  TaskDurations d;
  d.map = 19.0;
  d.shuffle_sort_base = 5.0;
  d.shuffle_per_remote_map = 0.05;
  d.merge = 8.5;
  return d;
}

void BM_TimelineConstruction(benchmark::State& state) {
  const int maps = static_cast<int>(state.range(0));
  const ModelInput in = ScalingInput(maps, 8);
  const TaskDurations d = ScalingDurations();
  for (auto _ : state) {
    auto tl = BuildTimeline(in, d);
    benchmark::DoNotOptimize(tl);
  }
  state.SetComplexityN(maps);
}
BENCHMARK(BM_TimelineConstruction)
    ->RangeMultiplier(2)
    ->Range(8, 2048)
    ->Complexity();

void BM_PrecedenceTreeConstruction(benchmark::State& state) {
  const int maps = static_cast<int>(state.range(0));
  const ModelInput in = ScalingInput(maps, 8);
  auto tl = BuildTimeline(in, ScalingDurations());
  if (!tl.ok()) {
    state.SkipWithError("timeline failed");
    return;
  }
  for (auto _ : state) {
    auto tree = BuildPrecedenceTree(*tl, 0);
    benchmark::DoNotOptimize(tree);
  }
  state.SetComplexityN(maps);
}
BENCHMARK(BM_PrecedenceTreeConstruction)
    ->RangeMultiplier(2)
    ->Range(8, 2048)
    ->Complexity();

void BM_TimelineNodesSweep(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const ModelInput in = ScalingInput(512, nodes);
  const TaskDurations d = ScalingDurations();
  for (auto _ : state) {
    auto tl = BuildTimeline(in, d);
    benchmark::DoNotOptimize(tl);
  }
  state.SetComplexityN(nodes);
}
BENCHMARK(BM_TimelineNodesSweep)->RangeMultiplier(2)->Range(2, 64);

}  // namespace
}  // namespace mrperf

BENCHMARK_MAIN();
