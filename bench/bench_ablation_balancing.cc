/// Ablation: precedence-tree balancing on vs off and fork/join evaluation
/// mode (group-harmonic vs the paper's literal nested binary H2 = 3/2).
/// §5.2: "For reducing the maximal depth of the precedence tree and, as
/// consequence, for decreasing the error, we balance it." Run on the
/// 64 MB-block workload where the tree is deepest.

#include <cstdio>

#include "experiments/experiment.h"

int main() {
  using namespace mrperf;
  ExperimentPoint point;
  point.num_nodes = 4;
  point.input_bytes = 5 * kGiB;
  point.num_jobs = 1;
  point.block_size_bytes = 64 * kMiB;  // 80 maps: deep tree

  ExperimentOptions base = DefaultExperimentOptions();
  base.repetitions = 3;
  auto measured = RunSimulatedMeasurement(point, base);
  if (!measured.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }
  std::printf("measured (simulated Hadoop setup): %.1f s\n\n", *measured);
  std::printf("%-16s %-9s | %9s %6s | %10s %10s\n", "fj-mode", "balanced",
              "forkjoin", "err%", "tripathi", "depth");

  for (auto mode : {ForkJoinMode::kGroupHarmonic,
                    ForkJoinMode::kNestedBinary}) {
    for (bool balanced : {true, false}) {
      ExperimentOptions opts = base;
      opts.model.estimator.forkjoin_mode = mode;
      opts.model.balance_tree = balanced;
      auto model = RunModelPrediction(point, opts);
      if (!model.ok()) {
        std::fprintf(stderr, "model failed: %s\n",
                     model.status().ToString().c_str());
        return 1;
      }
      std::printf("%-16s %-9s | %9.4g %+9.3g%% | %10.1f %10d\n",
                  mode == ForkJoinMode::kGroupHarmonic ? "group-harmonic"
                                                       : "nested-binary",
                  balanced ? "yes" : "no", model->forkjoin_response,
                  (model->forkjoin_response - *measured) / *measured * 100,
                  model->tripathi_response, model->tree_depth);
    }
  }
  std::printf(
      "\nExpected shape (paper §5.2): nested-binary on an unbalanced tree\n"
      "has the deepest P-chains and the largest overestimate; balancing\n"
      "reduces depth and error.\n");
  return 0;
}
