/// Baseline comparison: the dynamic model of the paper vs the two static
/// Hadoop 1.x-era baselines discussed in §2.1 — Herodotou's phase-cost sum
/// and ARIA's makespan-bound average — against the simulated measurement.
/// Shows why contention/synchronization-aware modelling matters: the
/// static estimates ignore queueing delays entirely.

#include <cstdio>

#include "experiments/experiment.h"
#include "hadoop/aria_model.h"
#include "hadoop/herodotou_model.h"
#include "workload/wordcount.h"

int main() {
  using namespace mrperf;
  std::printf("%-14s | %9s | %9s %9s %9s %9s\n", "point", "measured",
              "herodotou", "aria", "forkjoin", "tripathi");

  for (double gb : {1.0, 5.0}) {
    for (int jobs : {1}) {
      ExperimentPoint point;
      point.num_nodes = 4;
      point.input_bytes = static_cast<int64_t>(gb * kGiB);
      point.num_jobs = jobs;
      ExperimentOptions opts = DefaultExperimentOptions();
      opts.repetitions = 3;

      auto measured = RunSimulatedMeasurement(point, opts);
      auto model = RunModelPrediction(point, opts);
      if (!measured.ok() || !model.ok()) {
        std::fprintf(stderr, "point failed\n");
        return 1;
      }

      // Herodotou static: sum of wave-serialized phase costs.
      HerodotouModel hm(PaperCluster(point.num_nodes), PaperHadoopConfig(),
                        opts.profile);
      auto est = hm.EstimateJob(point.input_bytes);
      if (!est.ok()) return 1;

      // ARIA: makespan bounds with the cluster's container slots.
      AriaJobProfile aria;
      aria.map.num_tasks = est->num_map_tasks;
      aria.map.avg_task_seconds = est->map_task.TotalSeconds();
      aria.map.max_task_seconds = est->map_task.TotalSeconds();
      const PhaseCost ss = est->reduce_task.ShuffleSortCost();
      aria.first_shuffle.num_tasks = est->num_reduce_tasks;
      aria.first_shuffle.avg_task_seconds = ss.Total();
      aria.first_shuffle.max_task_seconds = ss.Total();
      aria.typical_shuffle = aria.first_shuffle;
      aria.reduce.num_tasks = est->num_reduce_tasks;
      aria.reduce.avg_task_seconds =
          est->reduce_task.MergeSubtaskCost().Total();
      aria.reduce.max_task_seconds = aria.reduce.avg_task_seconds;
      const HadoopConfig cfg = PaperHadoopConfig();
      auto bounds = EstimateJobCompletion(
          aria, point.num_nodes * cfg.MaxMapsPerNode(),
          point.num_nodes * cfg.MaxReducesPerNode());
      if (!bounds.ok()) return 1;

      std::printf("%-2.0fGB x %dj n4  | %9.1f | %9.1f %9.1f %9.1f %9.1f\n",
                  gb, jobs, *measured, est->total_seconds, bounds->average,
                  model->forkjoin_response, model->tripathi_response);
    }
  }
  std::printf(
      "\nExpected shape: the static baselines underestimate (no queueing,\n"
      "no synchronization delays); the dynamic model tracks the\n"
      "measurement and overestimates mildly (§5.2).\n");
  return 0;
}
