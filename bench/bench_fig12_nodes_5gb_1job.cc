/// Reproduces Figure 12: job response time vs number of nodes (4, 6, 8)
/// for WordCount on 5 GB input, 1 job.

#include "figure_common.h"

int main(int argc, char** argv) {
  return mrperf::bench::RunNodeSweepFigure(
      "Figure 12: Input 5GB; #jobs 1", /*input_gb=*/5.0, /*num_jobs=*/1,
      /*block_size_bytes=*/128 * mrperf::kMiB,
      mrperf::bench::ThreadsFromArgs(argc, argv),
      mrperf::bench::OutPathFromArgs(argc, argv),
      mrperf::bench::JsonOutPathFromArgs(argc, argv));
}
