/// Scheduler baseline comparison (paper §2.1): the Tetris multi-resource
/// packing scheduler vs the capacity scheduler's FIFO policy on the
/// simulated cluster, over a mixed workload of jobs with heterogeneous
/// container sizes. Grandl et al. report Tetris gains of over 30% in
/// makespan and average completion time on production-like mixes; the
/// simulated gap here is smaller (homogeneous MapReduce stages leave less
/// fragmentation to reclaim) but the ordering holds.

#include <cstdio>

#include "common/statistics.h"
#include "sim/cluster_sim.h"
#include "workload/wordcount.h"

int main() {
  using namespace mrperf;

  auto run_mix = [](SchedulerKind kind, uint64_t seed)
      -> Result<std::pair<double, double>> {
    SimOptions opts;
    opts.seed = seed;
    opts.task_cv = 0.6;
    opts.scheduler = kind;
    ClusterSimulator sim(PaperCluster(4), opts);
    // Mixed workload: small 1 GB jobs with small containers interleaved
    // with a large 5 GB job using big containers.
    for (int j = 0; j < 3; ++j) {
      SimJobSpec small;
      small.profile = WordCountProfile();
      small.config = PaperHadoopConfig();
      small.config.map_container_bytes = 1 * kGiB;
      small.config.reduce_container_bytes = 1 * kGiB;
      small.input_bytes = 1 * kGiB;
      MRPERF_RETURN_NOT_OK(sim.SubmitJob(small));
    }
    SimJobSpec big;
    big.profile = WordCountProfile();
    big.config = PaperHadoopConfig();
    big.config.map_container_bytes = 4 * kGiB;
    big.config.reduce_container_bytes = 4 * kGiB;
    big.input_bytes = 5 * kGiB;
    MRPERF_RETURN_NOT_OK(sim.SubmitJob(big));
    MRPERF_ASSIGN_OR_RETURN(SimResult r, sim.Run());
    return std::make_pair(r.makespan, r.MeanJobResponse());
  };

  std::printf("%-18s | %12s %12s\n", "scheduler", "makespan", "mean resp");
  for (auto [kind, name] :
       {std::pair{SchedulerKind::kCapacityFifo, "capacity-fifo"},
        std::pair{SchedulerKind::kTetrisPacking, "tetris-packing"}}) {
    std::vector<double> makespans, responses;
    for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
      auto r = run_mix(kind, seed);
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     r.status().ToString().c_str());
        return 1;
      }
      makespans.push_back(r->first);
      responses.push_back(r->second);
    }
    std::printf("%-18s | %12.1f %12.1f\n", name, Median(makespans),
                Median(responses));
  }
  std::printf(
      "\nExpected shape (§2.1): packing + SRTF at or below FIFO on both\n"
      "metrics; the paper notes Tetris still ignores the map→shuffle\n"
      "precedence its own model captures.\n");
  return 0;
}
