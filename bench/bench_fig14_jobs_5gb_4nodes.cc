/// Reproduces Figure 14: job response time vs number of concurrent jobs
/// (1-4) for WordCount on 5 GB input, 4 nodes.

#include "figure_common.h"

int main(int argc, char** argv) {
  return mrperf::bench::RunJobSweepFigure(
      "Figure 14: #Nodes 4; Input 5GB", /*nodes=*/4, /*input_gb=*/5.0,
      mrperf::bench::ThreadsFromArgs(argc, argv),
      mrperf::bench::OutPathFromArgs(argc, argv),
      mrperf::bench::JsonOutPathFromArgs(argc, argv));
}
