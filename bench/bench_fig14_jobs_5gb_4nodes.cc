/// Reproduces Figure 14: job response time vs number of concurrent jobs
/// (1-4) for WordCount on 5 GB input, 4 nodes.

#include "figure_common.h"

int main(int argc, char** argv) {
  mrperf::bench::BenchArgs args(argc, argv);
  const int threads = args.Threads();
  const std::string out = args.OutPath();
  const std::string json_out = args.JsonOutPath();
  if (!args.Validate()) return 2;
  return mrperf::bench::RunJobSweepFigure(
      "Figure 14: #Nodes 4; Input 5GB", /*nodes=*/4, /*input_gb=*/5.0,
      threads, out, json_out);
}
